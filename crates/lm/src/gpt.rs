//! A tiny GPT: character-level decoder-only transformer trained from scratch.
//!
//! Mirrors the GPT-2 block structure the paper uses — pre-LayerNorm,
//! multi-head causal self-attention, GELU MLP with 4× expansion, learned
//! positional embeddings — at a scale that trains on a CPU in seconds to
//! minutes. The paper's argument is explicitly model-agnostic ("we
//! deliberately employ a generic, less powerful LLM"), so a faithful small
//! transformer preserves the phenomenon under study: an autoregressive model
//! with good local statistics that nevertheless violates global rules.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::autograd::{NodeId, Tape};
use crate::optim::{AdamConfig, AdamW};
use crate::tensor::Matrix;
use crate::tokenizer::{TokenId, Vocab};
use crate::LanguageModel;

/// Architecture hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct GptConfig {
    /// Embedding / residual width.
    pub d_model: usize,
    /// Number of transformer blocks.
    pub n_layers: usize,
    /// Number of attention heads (`d_model % n_heads == 0`).
    pub n_heads: usize,
    /// Maximum sequence length (positional-embedding table size).
    pub max_seq_len: usize,
}

impl Default for GptConfig {
    fn default() -> Self {
        GptConfig {
            d_model: 64,
            n_layers: 2,
            n_heads: 2,
            max_seq_len: 160,
        }
    }
}

/// Indexes into the flat parameter vector.
struct Layout {
    tok_emb: usize,
    pos_emb: usize,
    blocks: Vec<BlockLayout>,
    ln_f_g: usize,
    ln_f_b: usize,
    head_w: usize,
    head_b: usize,
}

struct BlockLayout {
    ln1_g: usize,
    ln1_b: usize,
    attn_w: usize,
    attn_b: usize,
    proj_w: usize,
    proj_b: usize,
    ln2_g: usize,
    ln2_b: usize,
    fc_w: usize,
    fc_b: usize,
    out_w: usize,
    out_b: usize,
}

/// A character-level GPT model.
pub struct TinyGpt {
    config: GptConfig,
    vocab: Vocab,
    params: Vec<Matrix>,
    layout: Layout,
}

impl TinyGpt {
    /// Creates a model with randomly initialized weights (std 0.02, like
    /// GPT-2), deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if `d_model` is not divisible by `n_heads`.
    pub fn new(config: GptConfig, vocab: Vocab, seed: u64) -> TinyGpt {
        assert_eq!(
            config.d_model % config.n_heads,
            0,
            "d_model must be divisible by n_heads"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let d = config.d_model;
        let v = vocab.len();
        let mut params: Vec<Matrix> = Vec::new();
        let push = |params: &mut Vec<Matrix>, m: Matrix| -> usize {
            params.push(m);
            params.len() - 1
        };
        const STD: f32 = 0.02;

        let tok_emb = push(&mut params, Matrix::randn(v, d, STD, &mut rng));
        let pos_emb = push(
            &mut params,
            Matrix::randn(config.max_seq_len, d, STD, &mut rng),
        );
        let mut blocks = Vec::with_capacity(config.n_layers);
        for _ in 0..config.n_layers {
            let ln1_g = push(&mut params, Matrix::from_vec(1, d, vec![1.0; d]));
            let ln1_b = push(&mut params, Matrix::zeros(1, d));
            let attn_w = push(&mut params, Matrix::randn(d, 3 * d, STD, &mut rng));
            let attn_b = push(&mut params, Matrix::zeros(1, 3 * d));
            let proj_w = push(&mut params, Matrix::randn(d, d, STD, &mut rng));
            let proj_b = push(&mut params, Matrix::zeros(1, d));
            let ln2_g = push(&mut params, Matrix::from_vec(1, d, vec![1.0; d]));
            let ln2_b = push(&mut params, Matrix::zeros(1, d));
            let fc_w = push(&mut params, Matrix::randn(d, 4 * d, STD, &mut rng));
            let fc_b = push(&mut params, Matrix::zeros(1, 4 * d));
            let out_w = push(&mut params, Matrix::randn(4 * d, d, STD, &mut rng));
            let out_b = push(&mut params, Matrix::zeros(1, d));
            blocks.push(BlockLayout {
                ln1_g,
                ln1_b,
                attn_w,
                attn_b,
                proj_w,
                proj_b,
                ln2_g,
                ln2_b,
                fc_w,
                fc_b,
                out_w,
                out_b,
            });
        }
        let ln_f_g = push(&mut params, Matrix::from_vec(1, d, vec![1.0; d]));
        let ln_f_b = push(&mut params, Matrix::zeros(1, d));
        let head_w = push(&mut params, Matrix::randn(d, v, STD, &mut rng));
        let head_b = push(&mut params, Matrix::zeros(1, v));

        TinyGpt {
            config,
            vocab,
            params,
            layout: Layout {
                tok_emb,
                pos_emb,
                blocks,
                ln_f_g,
                ln_f_b,
                head_w,
                head_b,
            },
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &GptConfig {
        &self.config
    }

    /// The flat parameter tensors (used by the serializer).
    pub(crate) fn raw_params(&self) -> &[Matrix] {
        &self.params
    }

    /// Rebuilds a model from serialized parts, verifying that the parameter
    /// shapes match the architecture exactly.
    pub(crate) fn from_parts(
        config: GptConfig,
        vocab: Vocab,
        params: Vec<Matrix>,
    ) -> Result<TinyGpt, String> {
        let reference = TinyGpt::new(config, vocab.clone(), 0);
        if reference.params.len() != params.len() {
            return Err(format!(
                "parameter count mismatch: expected {}, found {}",
                reference.params.len(),
                params.len()
            ));
        }
        for (i, (a, b)) in reference.params.iter().zip(&params).enumerate() {
            if (a.rows(), a.cols()) != (b.rows(), b.cols()) {
                return Err(format!(
                    "parameter {i} shape mismatch: expected {}x{}, found {}x{}",
                    a.rows(),
                    a.cols(),
                    b.rows(),
                    b.cols()
                ));
            }
        }
        Ok(TinyGpt {
            params,
            ..reference
        })
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.params.iter().map(|m| m.rows() * m.cols()).sum()
    }

    /// Forward pass on a tape. Returns the T×V logits node and the leaf ids
    /// aligned with `self.params` (for gradient extraction).
    fn forward(
        &self,
        tape: &mut Tape,
        tokens: &[TokenId],
        requires_grad: bool,
    ) -> (NodeId, Vec<NodeId>) {
        let t_len = tokens.len();
        assert!(t_len >= 1, "empty input");
        assert!(
            t_len <= self.config.max_seq_len,
            "sequence longer than max_seq_len"
        );
        let leaves: Vec<NodeId> = self
            .params
            .iter()
            .map(|p| tape.leaf(p.clone(), requires_grad))
            .collect();
        let l = &self.layout;
        let d = self.config.d_model;
        let n_heads = self.config.n_heads;
        let hd = d / n_heads;

        let idx: Vec<usize> = tokens.iter().map(|&t| t as usize).collect();
        let pos: Vec<usize> = (0..t_len).collect();
        let te = tape.embed(leaves[l.tok_emb], &idx);
        let pe = tape.embed(leaves[l.pos_emb], &pos);
        let mut x = tape.add(te, pe);

        for b in &l.blocks {
            // Attention sub-block (pre-LN).
            let a = tape.layer_norm(x, leaves[b.ln1_g], leaves[b.ln1_b]);
            let qkv = tape.matmul(a, leaves[b.attn_w]);
            let qkv = tape.add_bias(qkv, leaves[b.attn_b]);
            let q = tape.slice_cols(qkv, 0, d);
            let k = tape.slice_cols(qkv, d, 2 * d);
            let v = tape.slice_cols(qkv, 2 * d, 3 * d);
            let mut heads: Vec<NodeId> = Vec::with_capacity(n_heads);
            for h in 0..n_heads {
                let qh = tape.slice_cols(q, h * hd, (h + 1) * hd);
                let kh = tape.slice_cols(k, h * hd, (h + 1) * hd);
                let vh = tape.slice_cols(v, h * hd, (h + 1) * hd);
                let kt = tape.transpose(kh);
                let scores = tape.matmul(qh, kt);
                let scores = tape.scale(scores, 1.0 / (hd as f32).sqrt());
                let probs = tape.causal_softmax(scores);
                heads.push(tape.matmul(probs, vh));
            }
            let merged = tape.concat_cols(&heads);
            let attn_out = tape.matmul(merged, leaves[b.proj_w]);
            let attn_out = tape.add_bias(attn_out, leaves[b.proj_b]);
            x = tape.add(x, attn_out);

            // MLP sub-block (pre-LN).
            let m = tape.layer_norm(x, leaves[b.ln2_g], leaves[b.ln2_b]);
            let hmid = tape.matmul(m, leaves[b.fc_w]);
            let hmid = tape.add_bias(hmid, leaves[b.fc_b]);
            let hmid = tape.gelu(hmid);
            let mlp_out = tape.matmul(hmid, leaves[b.out_w]);
            let mlp_out = tape.add_bias(mlp_out, leaves[b.out_b]);
            x = tape.add(x, mlp_out);
        }

        let xf = tape.layer_norm(x, leaves[l.ln_f_g], leaves[l.ln_f_b]);
        let logits = tape.matmul(xf, leaves[l.head_w]);
        let logits = tape.add_bias(logits, leaves[l.head_b]);
        (logits, leaves)
    }

    /// Mean next-token cross-entropy loss of `tokens` (length ≥ 2).
    pub fn loss_on(&self, tokens: &[TokenId]) -> f32 {
        assert!(tokens.len() >= 2, "need at least 2 tokens for a loss");
        let mut tape = Tape::new();
        let (logits, _) = self.forward(&mut tape, &tokens[..tokens.len() - 1], false);
        let targets: Vec<usize> = tokens[1..].iter().map(|&t| t as usize).collect();
        let loss = tape.cross_entropy(logits, &targets);
        tape.value(loss).get(0, 0)
    }

    /// One gradient step on a batch of windows. Returns the mean loss.
    fn train_batch(&mut self, batch: &[&[TokenId]], opt: &mut AdamW) -> f32 {
        let mut grad_acc: Vec<Matrix> = self
            .params
            .iter()
            .map(|p| Matrix::zeros(p.rows(), p.cols()))
            .collect();
        let mut total_loss = 0.0f32;
        for seq in batch {
            let mut tape = Tape::new();
            let (logits, leaves) = self.forward(&mut tape, &seq[..seq.len() - 1], true);
            let targets: Vec<usize> = seq[1..].iter().map(|&t| t as usize).collect();
            let loss = tape.cross_entropy(logits, &targets);
            total_loss += tape.value(loss).get(0, 0);
            tape.backward(loss);
            for (acc, &leaf) in grad_acc.iter_mut().zip(&leaves) {
                acc.add_scaled_inplace(&tape.grad(leaf), 1.0 / batch.len() as f32);
            }
        }
        opt.step(&mut self.params, &grad_acc);
        total_loss / batch.len() as f32
    }

    /// Trains on a corpus of token sequences for `steps` optimizer steps,
    /// sampling `batch_size` random windows per step. Returns the per-step
    /// mean losses.
    pub fn train<R: Rng>(
        &mut self,
        corpus: &[Vec<TokenId>],
        steps: u64,
        batch_size: usize,
        adam: AdamConfig,
        rng: &mut R,
    ) -> Vec<f32> {
        let usable: Vec<&Vec<TokenId>> = corpus.iter().filter(|s| s.len() >= 2).collect();
        assert!(!usable.is_empty(), "corpus has no trainable sequences");
        let mut opt = AdamW::new(adam, &self.params);
        let max_window = self.config.max_seq_len + 1; // +1: inputs are len-1
        let mut losses = Vec::with_capacity(steps as usize);
        for _ in 0..steps {
            let mut windows: Vec<Vec<TokenId>> = Vec::with_capacity(batch_size);
            for _ in 0..batch_size {
                let seq = usable[rng.random_range(0..usable.len())];
                if seq.len() <= max_window {
                    windows.push(seq.clone());
                } else {
                    let start = rng.random_range(0..=(seq.len() - max_window));
                    windows.push(seq[start..start + max_window].to_vec());
                }
            }
            let refs: Vec<&[TokenId]> = windows.iter().map(|w| w.as_slice()).collect();
            losses.push(self.train_batch(&refs, &mut opt));
        }
        losses
    }
}

// Row-level (single-position) inference kernels used by the KV cache.
impl TinyGpt {
    fn row_affine(x: &[f32], w: &Matrix, b: &Matrix) -> Vec<f32> {
        debug_assert_eq!(x.len(), w.rows());
        debug_assert_eq!(b.cols(), w.cols());
        let mut out: Vec<f32> = b.row(0).to_vec();
        for (k, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            for (o, &wv) in out.iter_mut().zip(w.row(k)) {
                *o += xv * wv;
            }
        }
        out
    }

    fn ln_row(x: &[f32], gamma: &Matrix, beta: &Matrix) -> Vec<f32> {
        const EPS: f32 = 1e-5;
        let n = x.len() as f32;
        let mean: f32 = x.iter().sum::<f32>() / n;
        let var: f32 = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
        let rstd = 1.0 / (var + EPS).sqrt();
        x.iter()
            .enumerate()
            .map(|(c, &v)| (v - mean) * rstd * gamma.get(0, c) + beta.get(0, c))
            .collect()
    }

    pub(crate) fn tok_embedding_row(&self, tok: TokenId) -> &[f32] {
        self.params[self.layout.tok_emb].row(tok as usize)
    }

    pub(crate) fn pos_embedding_row(&self, pos: usize) -> &[f32] {
        self.params[self.layout.pos_emb].row(pos)
    }

    /// Applies a block's first (`pre_attn = true`) or second LayerNorm.
    pub(crate) fn apply_layer_norm(&self, layer: usize, pre_attn: bool, x: &[f32]) -> Vec<f32> {
        let b = &self.layout.blocks[layer];
        let (g, be) = if pre_attn {
            (b.ln1_g, b.ln1_b)
        } else {
            (b.ln2_g, b.ln2_b)
        };
        Self::ln_row(x, &self.params[g], &self.params[be])
    }

    pub(crate) fn attn_qkv_row(&self, layer: usize, a: &[f32]) -> Vec<f32> {
        let b = &self.layout.blocks[layer];
        Self::row_affine(a, &self.params[b.attn_w], &self.params[b.attn_b])
    }

    pub(crate) fn attn_proj_row(&self, layer: usize, x: &[f32]) -> Vec<f32> {
        let b = &self.layout.blocks[layer];
        Self::row_affine(x, &self.params[b.proj_w], &self.params[b.proj_b])
    }

    pub(crate) fn mlp_row(&self, layer: usize, x: &[f32]) -> Vec<f32> {
        let b = &self.layout.blocks[layer];
        let mut mid = Self::row_affine(x, &self.params[b.fc_w], &self.params[b.fc_b]);
        for v in &mut mid {
            *v = crate::tensor::gelu(*v);
        }
        Self::row_affine(&mid, &self.params[b.out_w], &self.params[b.out_b])
    }

    pub(crate) fn final_layer_norm(&self, x: &[f32]) -> Vec<f32> {
        Self::ln_row(
            x,
            &self.params[self.layout.ln_f_g],
            &self.params[self.layout.ln_f_b],
        )
    }

    pub(crate) fn head_row(&self, x: &[f32]) -> Vec<f32> {
        Self::row_affine(
            x,
            &self.params[self.layout.head_w],
            &self.params[self.layout.head_b],
        )
    }
}

// Weight accessors for the batched (multi-lane) inference kernels in
// `crate::cache`. The batched path stacks lane activations into a `Matrix`
// and runs them through `Matrix::affine` against these weights; per lane the
// result is bit-identical to the row kernels above (same bias-init,
// ascending-k, zero-skip accumulation), so batching is output-invisible.
impl TinyGpt {
    /// A block's attention QKV projection `(W: d×3d, b: 1×3d)`.
    pub(crate) fn attn_qkv_weights(&self, layer: usize) -> (&Matrix, &Matrix) {
        let b = &self.layout.blocks[layer];
        (&self.params[b.attn_w], &self.params[b.attn_b])
    }

    /// A block's attention output projection `(W: d×d, b: 1×d)`.
    pub(crate) fn attn_proj_weights(&self, layer: usize) -> (&Matrix, &Matrix) {
        let b = &self.layout.blocks[layer];
        (&self.params[b.proj_w], &self.params[b.proj_b])
    }

    /// A block's MLP weights `(fc_w, fc_b, out_w, out_b)`.
    pub(crate) fn mlp_weights(&self, layer: usize) -> (&Matrix, &Matrix, &Matrix, &Matrix) {
        let b = &self.layout.blocks[layer];
        (
            &self.params[b.fc_w],
            &self.params[b.fc_b],
            &self.params[b.out_w],
            &self.params[b.out_b],
        )
    }

    /// The unembedding head `(W: d×V, b: 1×V)`.
    pub(crate) fn head_weights(&self) -> (&Matrix, &Matrix) {
        (
            &self.params[self.layout.head_w],
            &self.params[self.layout.head_b],
        )
    }
}

impl LanguageModel for TinyGpt {
    fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    fn next_logits(&self, context: &[TokenId]) -> Vec<f32> {
        // Empty context: predict from a single pad-ish token (id 0); the
        // caller normally provides at least a prompt or a BOS-like char.
        let ctx: Vec<TokenId> = if context.is_empty() {
            vec![0]
        } else if context.len() > self.config.max_seq_len {
            context[context.len() - self.config.max_seq_len..].to_vec()
        } else {
            context.to_vec()
        };
        let mut tape = Tape::new();
        let (logits, _) = self.forward(&mut tape, &ctx, false);
        let lv = tape.value(logits);
        lv.row(lv.rows() - 1).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::AdamConfig;

    fn tiny_config() -> GptConfig {
        GptConfig {
            d_model: 16,
            n_layers: 1,
            n_heads: 2,
            max_seq_len: 32,
        }
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let vocab = Vocab::from_corpus("abc");
        let model = TinyGpt::new(tiny_config(), vocab.clone(), 1);
        let ctx = vocab.encode("abca").unwrap();
        let l1 = model.next_logits(&ctx);
        let l2 = model.next_logits(&ctx);
        assert_eq!(l1.len(), vocab.len());
        assert_eq!(l1, l2, "inference must be deterministic");
        assert!(l1.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn same_seed_same_weights() {
        let vocab = Vocab::from_corpus("abc");
        let m1 = TinyGpt::new(tiny_config(), vocab.clone(), 42);
        let m2 = TinyGpt::new(tiny_config(), vocab.clone(), 42);
        let ctx = vocab.encode("ab").unwrap();
        assert_eq!(m1.next_logits(&ctx), m2.next_logits(&ctx));
        let m3 = TinyGpt::new(tiny_config(), vocab, 43);
        assert_ne!(m1.next_logits(&[0, 1]), m3.next_logits(&[0, 1]));
    }

    #[test]
    fn causality_prefix_invariance() {
        // Logits at position t must not depend on tokens after t: the
        // next-token logits for a prefix equal the prefix-row logits of the
        // longer sequence.
        let vocab = Vocab::from_corpus("abc");
        let model = TinyGpt::new(tiny_config(), vocab.clone(), 5);
        let full = vocab.encode("abcab").unwrap();
        let prefix = &full[..3];
        let from_prefix = model.next_logits(prefix);

        let mut tape = Tape::new();
        let (logits, _) = model.forward(&mut tape, &full, false);
        let row = tape.value(logits).row(2).to_vec();
        for (a, b) in from_prefix.iter().zip(&row) {
            assert!((a - b).abs() < 1e-4, "causality violated: {a} vs {b}");
        }
    }

    #[test]
    fn training_reduces_loss() {
        let vocab = Vocab::from_corpus("ab");
        let corpus: Vec<Vec<TokenId>> = (0..8)
            .map(|_| vocab.encode(&"ab".repeat(10)).unwrap())
            .collect();
        let mut model = TinyGpt::new(tiny_config(), vocab.clone(), 3);
        let before = model.loss_on(&corpus[0]);
        let mut rng = StdRng::seed_from_u64(0);
        let adam = AdamConfig {
            lr: 1e-2,
            warmup_steps: 5,
            total_steps: 60,
            ..AdamConfig::default()
        };
        model.train(&corpus, 60, 2, adam, &mut rng);
        let after = model.loss_on(&corpus[0]);
        assert!(
            after < before * 0.6,
            "loss did not drop enough: {before} -> {after}"
        );
        // The pattern "ab" should now be strongly predicted.
        let a = vocab.id_of('a').unwrap();
        let b = vocab.id_of('b').unwrap();
        let logits = model.next_logits(&vocab.encode("abab").unwrap());
        assert!(logits[a as usize] > logits[b as usize] || after < 0.1);
    }

    #[test]
    fn long_context_is_truncated() {
        let vocab = Vocab::from_corpus("ab");
        let model = TinyGpt::new(tiny_config(), vocab.clone(), 1);
        let long: Vec<TokenId> = vocab.encode(&"ab".repeat(100)).unwrap();
        let l = model.next_logits(&long);
        assert_eq!(l.len(), vocab.len());
        assert!(l.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn num_params_counts_everything() {
        let vocab = Vocab::from_corpus("abc");
        let cfg = tiny_config();
        let model = TinyGpt::new(cfg, vocab.clone(), 1);
        let d = cfg.d_model;
        let v = vocab.len();
        let per_block = 2 * d
            + (d * 3 * d + 3 * d)
            + (d * d + d)
            + 2 * d
            + (d * 4 * d + 4 * d)
            + (4 * d * d + d);
        let expected = v * d + cfg.max_seq_len * d + cfg.n_layers * per_block + 2 * d + (d * v + v);
        assert_eq!(model.num_params(), expected);
    }
}
