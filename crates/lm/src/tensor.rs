//! Dense row-major `f32` matrices with the kernels a tiny transformer needs.
//!
//! No SIMD intrinsics, no unsafe. The three matrix products are *blocked*
//! (cache-tiled over the inner and output-column dimensions) and
//! *row-parallel* over the workspace thread pool ([`minipool`]) once a
//! product is large enough to amortize the scoped-thread spawn; small
//! products run the serial kernel inline. Every kernel accumulates each
//! output element in ascending inner-dimension order regardless of tiling
//! or thread count, so results are bit-identical to the naive triple loop —
//! the workspace-wide determinism contract.

use minipool::ThreadPool;
use rand::Rng;

/// Tile height of the inner (`k`) dimension: one tile of the right-hand
/// matrix is `MM_BLOCK_K` rows long and stays cache-resident while a block
/// of output rows consumes it.
const MM_BLOCK_K: usize = 64;

/// Tile width of the output-column (`j`) dimension (with `MM_BLOCK_K` this
/// bounds the right-hand tile at 64 KiB of `f32`).
const MM_BLOCK_J: usize = 256;

/// Output rows handed to one worker at a time. Chosen so a row block's
/// accumulators stay in cache while it sweeps the shared right-hand tile.
const MM_BLOCK_I: usize = 16;

/// Minimum multiply-accumulate count before a product is worth
/// parallelizing; below this the scoped-thread spawn dominates.
const MM_PAR_MIN_MACS: usize = 1 << 15;

/// The pool for a product of `macs` multiply-accumulates over `rows`
/// output rows: the global pool when the work justifies spawning, else an
/// inline single-worker pool.
fn matmul_pool(rows: usize, macs: usize) -> ThreadPool {
    if rows > 1 && macs >= MM_PAR_MIN_MACS {
        ThreadPool::global()
    } else {
        ThreadPool::new(1)
    }
}

/// A dense row-major matrix of `f32`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// A matrix with entries drawn i.i.d. from `N(0, std²)` (Box–Muller).
    pub fn randn<R: Rng>(rows: usize, cols: usize, std: f32, rng: &mut R) -> Matrix {
        let n = rows * cols;
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.random::<f32>().max(1e-12);
            let u2: f32 = rng.random::<f32>();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The raw row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the raw buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Appends one row, growing the backing buffer amortized-O(1).
    ///
    /// `Vec::extend_from_slice` doubles capacity when full, so appending
    /// `n` rows costs O(n·cols) total — unlike rebuilding the matrix per
    /// row, which is O(n²·cols).
    ///
    /// # Panics
    /// Panics if `row.len() != self.cols()`.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "push_row width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Reserves capacity for at least `additional` more rows, so a known
    /// sequence of [`Matrix::push_row`] calls never reallocates.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.data.reserve(additional * self.cols);
    }

    /// Matrix product `self · other`, blocked and row-parallel.
    ///
    /// Output rows are computed in `MM_BLOCK_I`-row chunks distributed
    /// over the global pool; within a chunk the kernel tiles the inner and
    /// output-column dimensions so the active slice of `other` stays in
    /// cache. Per output element the accumulation runs in ascending-`k`
    /// order, so the result is bit-identical to the naive `i-k-j` loop at
    /// any thread count.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        if n == 0 || self.rows == 0 {
            return out;
        }
        let pool = matmul_pool(self.rows, self.rows * self.cols * n);
        pool.run_chunks(&mut out.data, MM_BLOCK_I * n, |chunk_idx, out_chunk| {
            let r0 = chunk_idx * MM_BLOCK_I;
            let chunk_rows = out_chunk.len() / n;
            for jb in (0..n).step_by(MM_BLOCK_J) {
                let j_end = (jb + MM_BLOCK_J).min(n);
                for kb in (0..self.cols).step_by(MM_BLOCK_K) {
                    let k_end = (kb + MM_BLOCK_K).min(self.cols);
                    for i in 0..chunk_rows {
                        let a_row = self.row(r0 + i);
                        let out_row = &mut out_chunk[i * n + jb..i * n + j_end];
                        for (dk, &a) in a_row[kb..k_end].iter().enumerate() {
                            if a == 0.0 {
                                continue;
                            }
                            let k = kb + dk;
                            let b_row = &other.data[k * n + jb..k * n + j_end];
                            for (o, &b) in out_row.iter_mut().zip(b_row) {
                                *o += a * b;
                            }
                        }
                    }
                }
            }
        });
        out
    }

    /// Batched affine map `self · w + bias` (bias broadcast to every row),
    /// blocked and row-parallel like [`Matrix::matmul`].
    ///
    /// This is the kernel behind the batched forward path: each row of
    /// `self` is one lane's activation, and the per-row result is
    /// **bit-identical** to the serial single-row kernel the KV cache uses
    /// (initialize the output with `bias`, then accumulate `x[k] · w[k][j]`
    /// in ascending-`k` order, skipping `x[k] == 0.0`). Batching therefore
    /// changes how many rows share one sweep of `w`, never the float result
    /// of any individual row — the foundation of the workspace's
    /// "byte-identical at any `LEJIT_BATCH`" contract.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch or if `bias` is not `1 × w.cols()`.
    pub fn affine(&self, w: &Matrix, bias: &Matrix) -> Matrix {
        assert_eq!(self.cols, w.rows, "affine dimension mismatch");
        assert_eq!(bias.rows, 1, "affine bias must be a row vector");
        assert_eq!(bias.cols, w.cols, "affine bias width mismatch");
        let n = w.cols;
        let mut out = Matrix::zeros(self.rows, n);
        if n == 0 || self.rows == 0 {
            return out;
        }
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(bias.row(0));
        }
        let pool = matmul_pool(self.rows, self.rows * self.cols * n);
        pool.run_chunks(&mut out.data, MM_BLOCK_I * n, |chunk_idx, out_chunk| {
            let r0 = chunk_idx * MM_BLOCK_I;
            let chunk_rows = out_chunk.len() / n;
            for jb in (0..n).step_by(MM_BLOCK_J) {
                let j_end = (jb + MM_BLOCK_J).min(n);
                for kb in (0..self.cols).step_by(MM_BLOCK_K) {
                    let k_end = (kb + MM_BLOCK_K).min(self.cols);
                    for i in 0..chunk_rows {
                        let a_row = self.row(r0 + i);
                        let out_row = &mut out_chunk[i * n + jb..i * n + j_end];
                        for (dk, &a) in a_row[kb..k_end].iter().enumerate() {
                            if a == 0.0 {
                                continue;
                            }
                            let k = kb + dk;
                            let b_row = &w.data[k * n + jb..k * n + j_end];
                            for (o, &b) in out_row.iter_mut().zip(b_row) {
                                *o += a * b;
                            }
                        }
                    }
                }
            }
        });
        out
    }

    /// `self · otherᵀ` without materializing the transpose (blocked,
    /// row-parallel; bit-identical to the naive loop at any thread count).
    pub fn matmul_bt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_bt dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        let n = other.rows;
        if n == 0 || self.rows == 0 {
            return out;
        }
        let pool = matmul_pool(self.rows, self.rows * self.cols * n);
        pool.run_chunks(&mut out.data, MM_BLOCK_I * n, |chunk_idx, out_chunk| {
            let r0 = chunk_idx * MM_BLOCK_I;
            let chunk_rows = out_chunk.len() / n;
            for jb in (0..n).step_by(MM_BLOCK_J) {
                let j_end = (jb + MM_BLOCK_J).min(n);
                for i in 0..chunk_rows {
                    let a_row = self.row(r0 + i);
                    let out_row = &mut out_chunk[i * n..(i + 1) * n];
                    for (j, o) in out_row[jb..j_end].iter_mut().enumerate() {
                        let b_row = other.row(jb + j);
                        let mut acc = 0.0f32;
                        for (x, y) in a_row.iter().zip(b_row) {
                            acc += x * y;
                        }
                        *o = acc;
                    }
                }
            }
        });
        out
    }

    /// `selfᵀ · other` without materializing the transpose (blocked,
    /// row-parallel; bit-identical to the naive loop at any thread count).
    pub fn matmul_at(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_at dimension mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        let n = other.cols;
        if n == 0 || self.cols == 0 {
            return out;
        }
        let pool = matmul_pool(self.cols, self.rows * self.cols * n);
        pool.run_chunks(&mut out.data, MM_BLOCK_I * n, |chunk_idx, out_chunk| {
            let r0 = chunk_idx * MM_BLOCK_I;
            let chunk_rows = out_chunk.len() / n;
            for jb in (0..n).step_by(MM_BLOCK_J) {
                let j_end = (jb + MM_BLOCK_J).min(n);
                for kb in (0..self.rows).step_by(MM_BLOCK_K) {
                    let k_end = (kb + MM_BLOCK_K).min(self.rows);
                    for k in kb..k_end {
                        let a_row = self.row(k);
                        let b_row = &other.data[k * n + jb..k * n + j_end];
                        for i in 0..chunk_rows {
                            let a = a_row[r0 + i];
                            if a == 0.0 {
                                continue;
                            }
                            let out_row = &mut out_chunk[i * n + jb..i * n + j_end];
                            for (o, &b) in out_row.iter_mut().zip(b_row) {
                                *o += a * b;
                            }
                        }
                    }
                }
            }
        });
        out
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Adds `other` into `self` in place, scaled by `k`.
    pub fn add_scaled_inplace(&mut self, other: &Matrix, k: f32) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += k * b;
        }
    }

    /// Adds a row vector (1×cols) to every row.
    pub fn add_row_broadcast(&self, row_vec: &Matrix) -> Matrix {
        assert_eq!(row_vec.rows, 1);
        assert_eq!(row_vec.cols, self.cols);
        let mut out = self.clone();
        for r in 0..self.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&row_vec.data) {
                *o += b;
            }
        }
        out
    }

    /// Elementwise multiplication by a scalar.
    pub fn scale(&self, k: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * k).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Sums rows into a 1×cols row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// The Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Copies columns `[start, end)` into a new matrix.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols);
        let w = end - start;
        let mut out = Matrix::zeros(self.rows, w);
        for r in 0..self.rows {
            out.data[r * w..(r + 1) * w]
                .copy_from_slice(&self.data[r * self.cols + start..r * self.cols + end]);
        }
        out
    }

    /// Horizontally concatenates matrices with equal row counts.
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty());
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows));
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            for p in parts {
                out.data[r * cols + off..r * cols + off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }
}

/// Numerically stable in-place softmax of a slice.
pub fn softmax_inplace(xs: &mut [f32]) {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    } else {
        // All entries were -inf: fall back to uniform (callers must treat
        // this as "no valid option", but we avoid NaNs).
        let n = xs.len() as f32;
        for x in xs.iter_mut() {
            *x = 1.0 / n;
        }
    }
}

/// GELU activation (tanh approximation, as in GPT-2).
#[inline]
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`].
#[inline]
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, vals: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, vals.to_vec())
    }

    #[test]
    fn matmul_basic() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_bt_equals_explicit_transpose() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(4, 3, &[1., 0., 1., 2., 1., 0., 0., 1., 2., 1., 1., 1.]);
        let direct = a.matmul_bt(&b);
        let explicit = a.matmul(&b.transpose());
        assert_eq!(direct, explicit);
    }

    #[test]
    fn matmul_at_equals_explicit_transpose() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 4, &[1., 0., 1., 2., 1., 0., 0., 1., 2., 1., 1., 1.]);
        let direct = a.matmul_at(&b);
        let explicit = a.transpose().matmul(&b);
        assert_eq!(direct, explicit);
    }

    #[test]
    fn broadcast_and_scale() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let bias = m(1, 2, &[10., 20.]);
        let out = a.add_row_broadcast(&bias);
        assert_eq!(out.data(), &[11., 22., 13., 24.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6., 8.]);
    }

    #[test]
    fn sum_rows_and_norm() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.sum_rows().data(), &[5., 7., 9.]);
        assert_eq!(a.sum(), 21.0);
        assert!((m(1, 2, &[3., 4.]).frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn slice_and_concat_roundtrip() {
        let a = m(2, 4, &[1., 2., 3., 4., 5., 6., 7., 8.]);
        let left = a.slice_cols(0, 2);
        let right = a.slice_cols(2, 4);
        assert_eq!(left.data(), &[1., 2., 5., 6.]);
        assert_eq!(right.data(), &[3., 4., 7., 8.]);
        let back = Matrix::concat_cols(&[&left, &right]);
        assert_eq!(back, a);
    }

    #[test]
    fn softmax_is_stable_and_normalized() {
        let mut xs = vec![1000.0, 1001.0, 1002.0];
        softmax_inplace(&mut xs);
        let sum: f32 = xs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
        assert!(xs.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn softmax_all_masked_does_not_nan() {
        let mut xs = vec![f32::NEG_INFINITY; 4];
        softmax_inplace(&mut xs);
        assert!(xs.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn gelu_matches_reference_points() {
        assert!((gelu(0.0)).abs() < 1e-6);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let h = 1e-3;
            let fd = (gelu(x + h) - gelu(x - h)) / (2.0 * h);
            assert!(
                (gelu_grad(x) - fd).abs() < 1e-3,
                "x={x}: analytic {} vs fd {fd}",
                gelu_grad(x)
            );
        }
    }

    #[test]
    fn randn_statistics() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let a = Matrix::randn(50, 50, 1.0, &mut rng);
        let n = 2500.0;
        let mean = a.sum() / n;
        let var = a
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / n;
        assert!(mean.abs() < 0.1, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn push_row_appends_and_amortizes() {
        let mut a = Matrix::zeros(0, 3);
        a.reserve_rows(4);
        for r in 0..4 {
            let base = (r * 3) as f32;
            a.push_row(&[base, base + 1.0, base + 2.0]);
        }
        assert_eq!(a.rows(), 4);
        assert_eq!(a.cols(), 3);
        assert_eq!(a.data(), (0..12).map(|v| v as f32).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn push_row_wrong_width_panics() {
        let mut a = Matrix::zeros(1, 3);
        a.push_row(&[1.0, 2.0]);
    }

    #[test]
    fn blocked_matmul_matches_naive_across_thread_counts() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        // Larger than every block constant in at least one dim, and above
        // the parallel threshold, so the tiled+parallel path is exercised.
        let a = Matrix::randn(70, 130, 1.0, &mut rng);
        let b = Matrix::randn(130, 300, 1.0, &mut rng);
        let mut naive = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                let av = a.get(i, k);
                for j in 0..b.cols() {
                    let v = naive.get(i, j) + av * b.get(k, j);
                    naive.set(i, j, v);
                }
            }
        }
        for threads in [1, 2, 4] {
            minipool::set_global_threads(threads);
            assert_eq!(a.matmul(&b), naive, "threads={threads}");
        }
        minipool::set_global_threads(1);
    }

    #[test]
    fn affine_matches_serial_row_kernel_bitwise() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let x = Matrix::randn(9, 48, 1.0, &mut rng);
        let w = Matrix::randn(48, 144, 1.0, &mut rng);
        let b = Matrix::randn(1, 144, 1.0, &mut rng);
        let batched = x.affine(&w, &b);
        // Reference: the exact accumulation order of the serial row kernel
        // (bias init, ascending k, skip zero inputs).
        for r in 0..x.rows() {
            let mut serial: Vec<f32> = b.row(0).to_vec();
            for (k, &xv) in x.row(r).iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                for (o, &wv) in serial.iter_mut().zip(w.row(k)) {
                    *o += xv * wv;
                }
            }
            assert_eq!(batched.row(r), serial.as_slice(), "row {r} diverged");
        }
        // And the single-row batch equals the corresponding multi-row row.
        for r in 0..x.rows() {
            let one = Matrix::from_vec(1, 48, x.row(r).to_vec());
            assert_eq!(one.affine(&w, &b).row(0), batched.row(r));
        }
    }

    #[test]
    fn affine_is_thread_count_invariant() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        let x = Matrix::randn(40, 130, 1.0, &mut rng);
        let w = Matrix::randn(130, 300, 1.0, &mut rng);
        let b = Matrix::randn(1, 300, 1.0, &mut rng);
        minipool::set_global_threads(1);
        let reference = x.affine(&w, &b);
        for threads in [2, 4] {
            minipool::set_global_threads(threads);
            assert_eq!(x.affine(&w, &b), reference, "threads={threads}");
        }
        minipool::set_global_threads(1);
    }

    #[test]
    #[should_panic(expected = "bias must be a row vector")]
    fn affine_rejects_non_row_bias() {
        let x = m(1, 2, &[1., 2.]);
        let w = m(2, 2, &[1., 0., 0., 1.]);
        let b = m(2, 1, &[0., 0.]);
        let _ = x.affine(&w, &b);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = m(2, 3, &[0.; 6]);
        let b = m(2, 3, &[0.; 6]);
        let _ = a.matmul(&b);
    }
}
