//! Dense row-major `f32` matrices with the kernels a tiny transformer needs.
//!
//! Everything is deliberately simple: no SIMD intrinsics, no unsafe — the
//! models in this reproduction are small enough that naive loops (with a
//! transposed inner kernel for cache friendliness) train in seconds.

use rand::Rng;

/// A dense row-major matrix of `f32`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// A matrix with entries drawn i.i.d. from `N(0, std²)` (Box–Muller).
    pub fn randn<R: Rng>(rows: usize, cols: usize, std: f32, rng: &mut R) -> Matrix {
        let n = rows * cols;
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.random::<f32>().max(1e-12);
            let u2: f32 = rng.random::<f32>();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The raw row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the raw buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// A view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: the inner loop runs over contiguous memory of
        // both `other` and `out`.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose.
    pub fn matmul_bt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_bt dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (x, y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// `selfᵀ · other` without materializing the transpose.
    pub fn matmul_at(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_at dimension mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let a_row = self.row(k);
            let b_row = other.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Adds `other` into `self` in place, scaled by `k`.
    pub fn add_scaled_inplace(&mut self, other: &Matrix, k: f32) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += k * b;
        }
    }

    /// Adds a row vector (1×cols) to every row.
    pub fn add_row_broadcast(&self, row_vec: &Matrix) -> Matrix {
        assert_eq!(row_vec.rows, 1);
        assert_eq!(row_vec.cols, self.cols);
        let mut out = self.clone();
        for r in 0..self.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&row_vec.data) {
                *o += b;
            }
        }
        out
    }

    /// Elementwise multiplication by a scalar.
    pub fn scale(&self, k: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * k).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Sums rows into a 1×cols row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// The Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Copies columns `[start, end)` into a new matrix.
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols);
        let w = end - start;
        let mut out = Matrix::zeros(self.rows, w);
        for r in 0..self.rows {
            out.data[r * w..(r + 1) * w]
                .copy_from_slice(&self.data[r * self.cols + start..r * self.cols + end]);
        }
        out
    }

    /// Horizontally concatenates matrices with equal row counts.
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty());
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows));
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            for p in parts {
                out.data[r * cols + off..r * cols + off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }
}

/// Numerically stable in-place softmax of a slice.
pub fn softmax_inplace(xs: &mut [f32]) {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    } else {
        // All entries were -inf: fall back to uniform (callers must treat
        // this as "no valid option", but we avoid NaNs).
        let n = xs.len() as f32;
        for x in xs.iter_mut() {
            *x = 1.0 / n;
        }
    }
}

/// GELU activation (tanh approximation, as in GPT-2).
#[inline]
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`].
#[inline]
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, vals: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, vals.to_vec())
    }

    #[test]
    fn matmul_basic() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_bt_equals_explicit_transpose() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(4, 3, &[1., 0., 1., 2., 1., 0., 0., 1., 2., 1., 1., 1.]);
        let direct = a.matmul_bt(&b);
        let explicit = a.matmul(&b.transpose());
        assert_eq!(direct, explicit);
    }

    #[test]
    fn matmul_at_equals_explicit_transpose() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 4, &[1., 0., 1., 2., 1., 0., 0., 1., 2., 1., 1., 1.]);
        let direct = a.matmul_at(&b);
        let explicit = a.transpose().matmul(&b);
        assert_eq!(direct, explicit);
    }

    #[test]
    fn broadcast_and_scale() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let bias = m(1, 2, &[10., 20.]);
        let out = a.add_row_broadcast(&bias);
        assert_eq!(out.data(), &[11., 22., 13., 24.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6., 8.]);
    }

    #[test]
    fn sum_rows_and_norm() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.sum_rows().data(), &[5., 7., 9.]);
        assert_eq!(a.sum(), 21.0);
        assert!((m(1, 2, &[3., 4.]).frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn slice_and_concat_roundtrip() {
        let a = m(2, 4, &[1., 2., 3., 4., 5., 6., 7., 8.]);
        let left = a.slice_cols(0, 2);
        let right = a.slice_cols(2, 4);
        assert_eq!(left.data(), &[1., 2., 5., 6.]);
        assert_eq!(right.data(), &[3., 4., 7., 8.]);
        let back = Matrix::concat_cols(&[&left, &right]);
        assert_eq!(back, a);
    }

    #[test]
    fn softmax_is_stable_and_normalized() {
        let mut xs = vec![1000.0, 1001.0, 1002.0];
        softmax_inplace(&mut xs);
        let sum: f32 = xs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
        assert!(xs.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn softmax_all_masked_does_not_nan() {
        let mut xs = vec![f32::NEG_INFINITY; 4];
        softmax_inplace(&mut xs);
        assert!(xs.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn gelu_matches_reference_points() {
        assert!((gelu(0.0)).abs() < 1e-6);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn gelu_grad_matches_finite_difference() {
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let h = 1e-3;
            let fd = (gelu(x + h) - gelu(x - h)) / (2.0 * h);
            assert!(
                (gelu_grad(x) - fd).abs() < 1e-3,
                "x={x}: analytic {} vs fd {fd}",
                gelu_grad(x)
            );
        }
    }

    #[test]
    fn randn_statistics() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let a = Matrix::randn(50, 50, 1.0, &mut rng);
        let n = 2500.0;
        let mean = a.sum() / n;
        let var = a
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / n;
        assert!(mean.abs() < 0.1, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = m(2, 3, &[0.; 6]);
        let b = m(2, 3, &[0.; 6]);
        let _ = a.matmul(&b);
    }
}
