//! Property tests: the blocked, row-parallel matrix kernels are
//! *bit-identical* to naive reference loops for random shapes, values, and
//! thread counts.
//!
//! This is the workspace determinism contract at the tensor layer: blocking
//! and parallelism may change *where* and *when* an output element is
//! computed, but never the per-element ascending-`k` accumulation order, so
//! equality here is exact `f32` equality, not approximate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use lejit_lm::tensor::Matrix;

/// Naive reference `a · b` (plain i-k-j triple loop).
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a.get(i, k);
            for j in 0..b.cols() {
                let v = out.get(i, j) + av * b.get(k, j);
                out.set(i, j, v);
            }
        }
    }
    out
}

/// Naive reference `a · bᵀ`.
fn naive_matmul_bt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        for j in 0..b.rows() {
            let mut acc = 0.0f32;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(j, k);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// Naive reference `aᵀ · b`.
fn naive_matmul_at(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.cols(), b.cols());
    for i in 0..a.cols() {
        for j in 0..b.cols() {
            let mut acc = 0.0f32;
            for k in 0..a.rows() {
                acc += a.get(k, i) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

/// A random matrix with some exact zeros, to exercise the sparsity skip.
fn rand_matrix(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    use rand::Rng;
    let mut m = Matrix::randn(rows, cols, 1.0, rng);
    for v in m.data_mut() {
        if rng.random::<f32>() < 0.1 {
            *v = 0.0;
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blocked/parallel kernels equal the naive loops exactly, for shapes
    /// straddling the block boundaries and for thread counts 1/2/4.
    #[test]
    fn blocked_kernels_equal_naive(
        m_dim in 1usize..=40,
        k_dim in 1usize..=80,
        n_dim in 1usize..=70,
        seed in 0u64..=1_000_000,
        threads in 1usize..=4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_matrix(m_dim, k_dim, &mut rng);
        let b = rand_matrix(k_dim, n_dim, &mut rng);
        minipool::set_global_threads(threads);
        prop_assert_eq!(a.matmul(&b), naive_matmul(&a, &b));

        let bt = rand_matrix(n_dim, k_dim, &mut rng);
        prop_assert_eq!(a.matmul_bt(&bt), naive_matmul_bt(&a, &bt));

        let at = rand_matrix(m_dim, n_dim, &mut rng);
        let a_t = rand_matrix(m_dim, k_dim, &mut rng);
        prop_assert_eq!(a_t.matmul_at(&at), naive_matmul_at(&a_t, &at));
        minipool::set_global_threads(1);
    }

    /// Growing a matrix row-by-row with `push_row` matches building it from
    /// the concatenated buffer in one shot.
    #[test]
    fn push_row_equals_from_vec(
        rows in 0usize..=30,
        cols in 1usize..=16,
        seed in 0u64..=1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let full = rand_matrix(rows.max(1), cols, &mut rng);
        let target_rows = rows.min(full.rows());
        let mut grown = Matrix::zeros(0, cols);
        grown.reserve_rows(target_rows);
        for r in 0..target_rows {
            grown.push_row(full.row(r));
        }
        let expect = Matrix::from_vec(
            target_rows,
            cols,
            full.data()[..target_rows * cols].to_vec(),
        );
        prop_assert_eq!(grown, expect);
    }
}
