//! Property-based tests: the SMT solver must agree with brute-force
//! enumeration on randomly generated small QF-LIA problems, and its
//! optimization queries must return true extrema.

use proptest::prelude::*;

use lejit_smt::{SatResult, Solver, TermId, VarId};

/// A randomly generated comparison over up to 3 variables.
#[derive(Clone, Debug)]
struct RandAtom {
    coeffs: Vec<i64>, // one per variable
    constant: i64,
    op: u8, // 0: <=, 1: >=, 2: ==
}

/// A random formula: conjunction of disjunctions of atoms (small CNF-ish).
#[derive(Clone, Debug)]
struct RandFormula {
    num_vars: usize,
    lo: i64,
    hi: i64,
    clauses: Vec<Vec<RandAtom>>,
}

fn rand_atom(num_vars: usize) -> impl Strategy<Value = RandAtom> {
    (
        proptest::collection::vec(-3i64..=3, num_vars),
        -20i64..=20,
        0u8..=2,
    )
        .prop_map(|(coeffs, constant, op)| RandAtom {
            coeffs,
            constant,
            op,
        })
}

fn rand_formula() -> impl Strategy<Value = RandFormula> {
    (2usize..=3, 0i64..=2, 4i64..=8).prop_flat_map(|(num_vars, lo, hi_off)| {
        let hi = lo + hi_off;
        proptest::collection::vec(proptest::collection::vec(rand_atom(num_vars), 1..=2), 1..=4)
            .prop_map(move |clauses| RandFormula {
                num_vars,
                lo,
                hi,
                clauses,
            })
    })
}

fn atom_holds(a: &RandAtom, assign: &[i64]) -> bool {
    let lhs: i64 = a.coeffs.iter().zip(assign).map(|(c, v)| c * v).sum::<i64>() + a.constant;
    match a.op {
        0 => lhs <= 0,
        1 => lhs >= 0,
        _ => lhs == 0,
    }
}

fn formula_holds(f: &RandFormula, assign: &[i64]) -> bool {
    f.clauses
        .iter()
        .all(|cl| cl.iter().any(|a| atom_holds(a, assign)))
}

/// Brute force: enumerate the full box.
fn brute_force(f: &RandFormula) -> Option<Vec<i64>> {
    let range: Vec<i64> = (f.lo..=f.hi).collect();
    let mut assign = vec![f.lo; f.num_vars];
    loop {
        if formula_holds(f, &assign) {
            return Some(assign);
        }
        // Increment like an odometer.
        let mut i = 0;
        loop {
            if i == f.num_vars {
                return None;
            }
            let pos = range.iter().position(|&r| r == assign[i]).unwrap();
            if pos + 1 < range.len() {
                assign[i] = range[pos + 1];
                break;
            }
            assign[i] = f.lo;
            i += 1;
        }
    }
}

fn atom_term(s: &mut Solver, vars: &[VarId], a: &RandAtom) -> TermId {
    let mut addends: Vec<TermId> = Vec::new();
    for (i, &c) in a.coeffs.iter().enumerate() {
        let vt = s.var(vars[i]);
        addends.push(s.mul_const(c, vt));
    }
    let k = s.int(a.constant);
    addends.push(k);
    let lhs = s.add(&addends);
    let zero = s.int(0);
    match a.op {
        0 => s.le(lhs, zero),
        1 => s.ge(lhs, zero),
        _ => s.eq(lhs, zero),
    }
}

fn build(f: &RandFormula, s: &mut Solver) -> (Vec<VarId>, TermId) {
    let vars: Vec<VarId> = (0..f.num_vars)
        .map(|i| s.int_var(&format!("x{i}"), f.lo, f.hi))
        .collect();
    let mut clause_terms: Vec<TermId> = Vec::new();
    for cl in &f.clauses {
        let atom_terms: Vec<TermId> = cl.iter().map(|a| atom_term(s, &vars, a)).collect();
        clause_terms.push(s.or(&atom_terms));
    }
    let root = s.and(&clause_terms);
    (vars, root)
}

/// A formula plus a stack of extra atoms to assert in nested frames.
fn formula_with_extras() -> impl Strategy<Value = (RandFormula, Vec<RandAtom>)> {
    rand_formula().prop_flat_map(|f| {
        let nv = f.num_vars;
        (Just(f), proptest::collection::vec(rand_atom(nv), 1..=3))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solver_agrees_with_brute_force(f in rand_formula()) {
        let expected = brute_force(&f);
        let mut s = Solver::new();
        let (vars, root) = build(&f, &mut s);
        s.assert(root);
        match s.check().unwrap() {
            SatResult::Sat => {
                prop_assert!(expected.is_some(), "solver said SAT, brute force says UNSAT");
                let m = s.model().unwrap();
                let assign: Vec<i64> = vars.iter().map(|&v| m.int_value(v).unwrap()).collect();
                prop_assert!(formula_holds(&f, &assign), "model does not satisfy formula: {assign:?}");
                // All values within declared bounds.
                for &v in &assign {
                    prop_assert!((f.lo..=f.hi).contains(&v));
                }
            }
            SatResult::Unsat => {
                prop_assert!(expected.is_none(), "solver said UNSAT but {:?} satisfies", expected);
            }
            SatResult::Unknown => prop_assert!(false, "unexpected Unknown on tiny problem"),
        }
    }

    #[test]
    fn optimize_returns_true_extrema(f in rand_formula()) {
        // Compute true min/max of x0 by brute force.
        let range: Vec<i64> = (f.lo..=f.hi).collect();
        let mut feasible_x0: Vec<i64> = Vec::new();
        for &x0 in &range {
            // Enumerate the rest.
            let rest = f.num_vars - 1;
            let mut found = false;
            let mut assign = vec![f.lo; rest];
            'outer: loop {
                let mut full = vec![x0];
                full.extend_from_slice(&assign);
                if formula_holds(&f, &full) {
                    found = true;
                    break;
                }
                let mut i = 0;
                loop {
                    if i == rest { break 'outer; }
                    if assign[i] < f.hi {
                        assign[i] += 1;
                        break;
                    }
                    assign[i] = f.lo;
                    i += 1;
                }
            }
            if found {
                feasible_x0.push(x0);
            }
        }
        let mut s = Solver::new();
        let (vars, root) = build(&f, &mut s);
        s.assert(root);
        let min = s.minimize(vars[0]).unwrap();
        let max = s.maximize(vars[0]).unwrap();
        prop_assert_eq!(min, feasible_x0.first().copied());
        prop_assert_eq!(max, feasible_x0.last().copied());
    }

    #[test]
    fn push_pop_restores_satisfiability(f in rand_formula()) {
        let mut s = Solver::new();
        let (vars, root) = build(&f, &mut s);
        s.assert(root);
        let before = s.check().unwrap();
        // Push an arbitrary extra constraint (x0 >= hi), then pop it.
        s.push();
        let vt = s.var(vars[0]);
        let c = s.int(f.hi);
        let extra = s.ge(vt, c);
        s.assert(extra);
        let _ = s.check().unwrap();
        s.pop();
        let after = s.check().unwrap();
        prop_assert_eq!(before, after, "push/pop changed satisfiability");
    }

    /// Panic-freedom (L2): a malformed clause database — clauses or
    /// assumptions referencing variables that were never allocated — must
    /// surface as `Err`, never as a panic or an out-of-bounds index.
    #[test]
    fn malformed_clause_db_errors_instead_of_panicking(
        num_vars in 0usize..4,
        raw_clauses in proptest::collection::vec(
            proptest::collection::vec((0u32..8, proptest::bool::ANY), 0..4),
            0..6,
        ),
    ) {
        use lejit_smt::{Lit, SatSolver};

        let mut sat = SatSolver::new();
        let vars: Vec<_> = (0..num_vars).map(|_| sat.new_var()).collect();
        let mut any_invalid = false;
        for cl in &raw_clauses {
            let lits: Vec<Lit> = cl
                .iter()
                .map(|&(idx, pos)| match vars.get(idx as usize) {
                    Some(&v) => Lit::new(v, pos),
                    None => {
                        any_invalid = true;
                        // Fabricate a literal for a variable that was never
                        // allocated (indices >= num_vars).
                        Lit::new(lejit_smt::SatVar::from_index(idx), pos)
                    }
                })
                .collect();
            sat.add_clause(&lits);
        }
        let outcome = sat.solve(&[]);
        if any_invalid {
            prop_assert!(outcome.is_err(), "invalid clause DB must be an Err");
        } else {
            prop_assert!(outcome.is_ok(), "well-formed clause DB must solve");
        }
    }
}

/// Body of `retraction_matches_fresh_oracle_under_nested_frames`, kept as a
/// plain function so the `proptest!` token-muncher stays within the default
/// macro recursion limit.
fn check_retraction_oracle(f: &RandFormula, extras: &[RandAtom]) {
    let mut s = Solver::new();
    let (vars, root) = build(f, &mut s);
    s.assert(root);
    for a in extras {
        s.push();
        let t = atom_term(&mut s, &vars, a);
        s.assert(t);
        let _ = s.check().unwrap();
    }
    for depth in (0..extras.len()).rev() {
        s.pop();
        // Oracle: the base formula plus the extras still on the stack.
        let mut g = f.clone();
        for a in &extras[..depth] {
            g.clauses.push(vec![a.clone()]);
        }
        let expected = brute_force(&g);
        match s.check().unwrap() {
            SatResult::Sat => {
                prop_assert!(
                    expected.is_some(),
                    "depth {depth}: solver SAT, oracle UNSAT"
                );
                let m = s.model().unwrap();
                let assign: Vec<i64> = vars.iter().map(|&v| m.int_value(v).unwrap()).collect();
                prop_assert!(
                    formula_holds(&g, &assign),
                    "depth {depth}: witness {assign:?} violates the live assertions"
                );
                for &v in &assign {
                    prop_assert!((f.lo..=f.hi).contains(&v));
                }
            }
            SatResult::Unsat => prop_assert!(
                expected.is_none(),
                "depth {depth}: solver UNSAT but oracle found {:?}",
                expected
            ),
            SatResult::Unknown => prop_assert!(false, "unexpected Unknown"),
        }
    }
}

/// Body of `retraction_keeps_clause_db_steady` (see above for why it is a
/// plain function).
fn check_clause_db_steady(f: &RandFormula, extras: &[RandAtom]) {
    let mut s = Solver::new();
    let (vars, root) = build(f, &mut s);
    s.assert(root);
    let _ = s.check().unwrap();
    let mut counts = Vec::new();
    for _ in 0..6 {
        s.push();
        let t = atom_term(&mut s, &vars, &extras[0]);
        s.assert(t);
        let _ = s.check().unwrap();
        s.pop();
        counts.push(s.num_live_clauses());
    }
    // The first rounds may add permanent state (Tseitin definitions of the
    // extra atom, theory lemmas, learnt clauses over permanent clauses);
    // identical later rounds must add nothing.
    prop_assert!(
        counts[2..].windows(2).all(|w| w[0] == w[1]),
        "clause DB not steady across identical frames: {counts:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Retraction soundness: after any LIFO sequence of framed assertions
    /// and pops, the verdict and witness values must match a brute-force
    /// oracle over exactly the assertions still live — popped constraints
    /// must leave no semantic residue behind.
    #[test]
    fn retraction_matches_fresh_oracle_under_nested_frames(fe in formula_with_extras()) {
        check_retraction_oracle(&fe.0, &fe.1);
    }

    /// Retraction completeness: repeating an identical frame (push, assert,
    /// check, pop) must hold the live clause count at a steady state —
    /// the pre-fix behaviour leaked every frame's clauses into the database
    /// forever, growing it by at least one clause per round.
    #[test]
    fn retraction_keeps_clause_db_steady(fe in formula_with_extras()) {
        check_clause_db_steady(&fe.0, &fe.1);
    }
}
