//! Theory propagation: the differential oracle and the lazy-explanation
//! contract.
//!
//! Three families:
//!
//! 1. A scripted [`TheoryPropagator`] drives the SAT core directly and pins
//!    the lazy-reason protocol: a propagated literal resolved on by 1-UIP
//!    must have its explanation materialized (exactly then, not before),
//!    and the resulting learnt clause must produce the same verdict the
//!    eager encoding would.
//! 2. A differential proptest: full [`Solver`] workloads with
//!    `TheoryConfig::propagate` on vs off. Verdicts and objective values
//!    (`minimize`/`maximize`) are semantically determined, so they must be
//!    identical; only the search path (and its cost profile) may differ.
//! 3. Frame-scoped explanation lifetime: explanation clauses are guarded by
//!    the innermost frame selector, so `pop` deletes them and long sessions
//!    stay flat — the same high-water-mark methodology as
//!    `session_reuse_flat.rs`.

use proptest::prelude::*;

use lejit_smt::sat::SatOutcome;
use lejit_smt::{
    Lit, SatResult, SatSolver, Solver, SolverError, TermId, TheoryConfig, TheoryPropagator, VarId,
};

/// A propagator for a fixed implication `p ⇒ q`, counting explanation
/// requests so the test can observe *when* the reason was materialized.
struct ScriptedPropagator {
    p: Lit,
    q: Lit,
    explains: u64,
}

impl TheoryPropagator for ScriptedPropagator {
    fn propagate(&mut self, sat: &SatSolver) -> Result<Vec<Lit>, SolverError> {
        let p_holds = sat.assigned_value(self.p.var()) == Some(self.p.is_positive());
        if p_holds && sat.assigned_value(self.q.var()).is_none() {
            Ok(vec![self.q])
        } else {
            Ok(Vec::new())
        }
    }

    fn explain(&mut self, lit: Lit) -> Result<Vec<Lit>, SolverError> {
        assert_eq!(lit, self.q, "only q is ever propagated");
        self.explains += 1;
        Ok(vec![self.q, !self.p])
    }
}

#[test]
fn lazy_reason_clause_resolves_in_conflict_analysis() {
    // p assumed, theory says p ⇒ q, clauses say p ∧ q ⇒ r and p ∧ q ⇒ ¬r.
    // The ternary clauses stay inert until the *theory* places q on the
    // trail (unit propagation alone cannot derive it), after which they
    // collapse to a conflict whose analysis must resolve through q — forcing
    // the lazy explanation [q ∨ ¬p] to materialize mid-analysis and yielding
    // the learnt unit ¬p (p is the 1-UIP).
    let mut sat = SatSolver::new();
    let p = Lit::new(sat.new_var(), true);
    let q = Lit::new(sat.new_var(), true);
    let r = Lit::new(sat.new_var(), true);
    assert!(sat.add_clause(&[!q, !p, r]));
    assert!(sat.add_clause(&[!q, !p, !r]));
    let mut prop = ScriptedPropagator { p, q, explains: 0 };

    assert_eq!(
        sat.solve_with(&[p], Some(&mut prop)).unwrap(),
        SatOutcome::Unsat
    );
    assert_eq!(prop.explains, 1, "exactly one resolution touched q");
    let stats = sat.stats();
    assert!(stats.theory_propagations >= 1);
    assert_eq!(stats.theory_explanations, 1);

    // The learnt ¬p is now a root fact: the instance stays satisfiable
    // without the assumption, and the propagator (whose trigger is dead)
    // is never asked for anything again.
    assert_eq!(
        sat.solve_with(&[], Some(&mut prop)).unwrap(),
        SatOutcome::Sat
    );
    assert_eq!(prop.explains, 1);
    assert!(!sat.model_value(p.var()));
}

#[test]
fn propagations_that_never_conflict_pay_for_no_explanation() {
    // p ⇒ q with nothing contradicting q: the literal is enqueued but no
    // conflict ever resolves on it, so explain() must never run.
    let mut sat = SatSolver::new();
    let p = Lit::new(sat.new_var(), true);
    let q = Lit::new(sat.new_var(), true);
    let mut prop = ScriptedPropagator { p, q, explains: 0 };
    assert_eq!(
        sat.solve_with(&[p], Some(&mut prop)).unwrap(),
        SatOutcome::Sat
    );
    assert!(
        sat.model_value(q.var()),
        "propagated literal is in the model"
    );
    let stats = sat.stats();
    assert!(stats.theory_propagations >= 1);
    assert_eq!(stats.theory_explanations, 0);
    assert_eq!(prop.explains, 0);
}

// ---------------------------------------------------------------------------
// Differential oracle: propagate=on vs propagate=off.
// ---------------------------------------------------------------------------

/// A random formula: a shared variable box plus constraints, each a
/// disjunction of linear atoms `Σ cᵢ·xᵢ ≤ k`.
#[derive(Clone, Debug)]
struct DiffProblem {
    num_vars: usize,
    lo: i64,
    hi: i64,
    constraints: Vec<Vec<(Vec<i64>, i64)>>,
}

fn diff_problem() -> impl Strategy<Value = DiffProblem> {
    (2usize..=3, 0i64..=2, 4i64..=8).prop_flat_map(|(num_vars, lo, hi_off)| {
        let atom = (proptest::collection::vec(-3i64..=3, num_vars), -20i64..=20);
        let constraint = proptest::collection::vec(atom, 1..=2);
        proptest::collection::vec(constraint, 1..=6).prop_map(move |constraints| DiffProblem {
            num_vars,
            lo,
            hi: lo + hi_off,
            constraints,
        })
    })
}

fn assert_problem(s: &mut Solver, p: &DiffProblem) -> Vec<VarId> {
    let vars: Vec<VarId> = (0..p.num_vars)
        .map(|i| s.int_var(&format!("x{i}"), p.lo, p.hi))
        .collect();
    for disjuncts in &p.constraints {
        let atoms: Vec<TermId> = disjuncts
            .iter()
            .map(|(coeffs, k)| {
                let terms: Vec<TermId> = coeffs
                    .iter()
                    .zip(&vars)
                    .filter(|(&c, _)| c != 0)
                    .map(|(&c, &v)| {
                        let tv = s.var(v);
                        s.mul_const(c, tv)
                    })
                    .collect();
                let lhs = if terms.is_empty() {
                    s.int(0)
                } else {
                    s.add(&terms)
                };
                let rhs = s.int(*k);
                s.le(lhs, rhs)
            })
            .collect();
        let t = s.or(&atoms);
        s.assert(t);
    }
    vars
}

/// Verdict plus `(min, max)` of `x0` when satisfiable.
type ConfigOutcome = (SatResult, Option<(Option<i64>, Option<i64>)>);

/// Verdict and objective values for one configuration. Objective values are
/// semantically determined by the formula, so they are directly comparable
/// across configurations even though models and search paths are not.
fn run_config(p: &DiffProblem, propagate: bool) -> ConfigOutcome {
    let mut s = Solver::new();
    s.set_theory_config(TheoryConfig {
        propagate,
        ..TheoryConfig::default()
    });
    let vars = assert_problem(&mut s, p);
    let r = s.check().unwrap();
    let objectives = if r == SatResult::Sat {
        Some((s.minimize(vars[0]).unwrap(), s.maximize(vars[0]).unwrap()))
    } else {
        None
    };
    (r, objectives)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn propagation_preserves_verdicts_and_objectives(p in diff_problem()) {
        let on = run_config(&p, true);
        let off = run_config(&p, false);
        prop_assert_eq!(&on, &off, "propagate=on diverged from the off oracle");
    }
}

// ---------------------------------------------------------------------------
// Frame-scoped explanation lifetime.
// ---------------------------------------------------------------------------

#[test]
fn explanation_clauses_are_retracted_with_their_frame() {
    // Each frame fixes i1 = 55 (entailing ¬(i1 ≤ 5), which the theory
    // propagates onto the trail) and asserts a clause pair that forces the
    // atom A = (i1 ≤ 5) to be true at the boolean level — so every check
    // conflicts, and the conflict can only be explained by resolving
    // through the propagated ¬A, materializing its explanation clause
    // inside the frame. Because explanations are guarded by the innermost
    // frame selector, `pop` must delete them: the live clause count after
    // each cycle may not exceed its warm-up high-water mark.
    let mut s = Solver::new();
    let vars: Vec<VarId> = (0..3).map(|t| s.int_var(&format!("i{t}"), 0, 60)).collect();
    let terms: Vec<TermId> = vars.iter().map(|&v| s.var(v)).collect();
    let mut counts = Vec::new();
    for round in 0..12i64 {
        s.push();
        let c55 = s.int(55);
        let eq = s.eq(terms[1], c55);
        s.assert(eq);
        let c5 = s.int(5);
        let a = s.le(terms[1], c5);
        let b = s.le(terms[2], c5);
        let nb = s.not(b);
        // (A ∨ B) ∧ (A ∨ ¬B) ⇒ A, contradicting the propagated ¬A.
        let d1 = s.or(&[a, b]);
        s.assert(d1);
        let d2 = s.or(&[a, nb]);
        s.assert(d2);
        assert_eq!(s.check().unwrap(), SatResult::Unsat, "round {round}");
        s.pop();
        counts.push(s.num_live_clauses());
    }
    let stats = s.stats();
    assert!(
        stats.theory_propagations > 0,
        "workload never propagated; the lifetime claim is untested"
    );
    assert!(
        stats.theory_explanations > 0,
        "no explanation clause was ever materialized; the lifetime claim \
         is untested"
    );
    let warmup_max = counts[..3].iter().max().copied().unwrap();
    for (i, &n) in counts.iter().enumerate().skip(3) {
        assert!(
            n <= warmup_max,
            "cycle {i}: {n} live clauses exceeds warm-up high-water mark \
             {warmup_max} — explanation clauses are leaking (counts: {counts:?})"
        );
    }
}
