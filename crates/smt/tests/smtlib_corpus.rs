//! End-to-end solver regressions expressed as SMT-LIB-subset scripts —
//! compact, human-auditable test cases covering the behaviours the LeJIT
//! engine depends on.

use lejit_smt::run_script;

fn lines(src: &str) -> Vec<String> {
    run_script(src).expect("script runs").lines
}

#[test]
fn paper_fig1b_lookahead() {
    // R1 + R2 with I_0..I_2 pinned: the feasible range of I_3 is [0, 40],
    // and pinning I_3 = 39 forces I_4 = 1.
    let out = lines(
        "(set-logic QF_LIA)
         (declare-const i0 (Int 0 60)) (declare-const i1 (Int 0 60))
         (declare-const i2 (Int 0 60)) (declare-const i3 (Int 0 60))
         (declare-const i4 (Int 0 60))
         (assert (= (+ i0 i1 i2 i3 i4) 100))
         (assert (= i0 20)) (assert (= i1 15)) (assert (= i2 25))
         (minimize i3)
         (maximize i3)
         (push)
         (assert (= i3 39))
         (minimize i4)
         (maximize i4)
         (pop)",
    );
    assert_eq!(
        out,
        vec![
            "(minimize i3 0)",
            "(maximize i3 40)",
            "(minimize i4 1)",
            "(maximize i4 1)",
        ]
    );
}

#[test]
fn integer_cuts() {
    // 3x + 3y = 10 has a rational solution but no integer one.
    let out = lines(
        "(declare-const x (Int 0 10)) (declare-const y (Int 0 10))
         (assert (= (+ (* 3 x) (* 3 y)) 10))
         (check-sat)",
    );
    assert_eq!(out, vec!["unsat"]);
    // …while 3x + 3y = 9 does.
    let out = lines(
        "(declare-const x (Int 0 10)) (declare-const y (Int 0 10))
         (assert (= (+ (* 3 x) (* 3 y)) 9))
         (check-sat) (get-value (x y))",
    );
    assert_eq!(out[0], "sat");
}

#[test]
fn disjunctive_reasoning() {
    // (x <= 3 or x >= 7) with x in [4, 6] is unsat only via DPLL(T)
    // refinement — the boolean abstraction alone is satisfiable.
    let out = lines(
        "(declare-const x (Int 4 6))
         (assert (or (<= x 3) (>= x 7)))
         (check-sat)",
    );
    assert_eq!(out, vec!["unsat"]);
}

#[test]
fn implication_chains() {
    let out = lines(
        "(declare-const congestion (Int 0 100))
         (declare-const burst (Int 0 60))
         (assert (=> (> congestion 0) (>= burst 30)))
         (push) (assert (= congestion 5)) (minimize burst) (pop)
         (push) (assert (= congestion 0)) (minimize burst) (pop)",
    );
    assert_eq!(out, vec!["(minimize burst 30)", "(minimize burst 0)"]);
}

#[test]
fn nested_push_pop_stack() {
    let out = lines(
        "(declare-const x (Int 0 100))
         (push) (assert (>= x 10))
           (push) (assert (<= x 5)) (check-sat) (pop)
           (check-sat) (minimize x)
         (pop)
         (minimize x)",
    );
    assert_eq!(
        out,
        vec!["unsat", "sat", "(minimize x 10)", "(minimize x 0)"]
    );
}

#[test]
fn negative_domains() {
    let out = lines(
        "(declare-const x (Int (- 50) 50)) (declare-const y (Int (- 50) 50))
         (assert (= (+ x y) (- 0 30)))
         (assert (>= x 10))
         (minimize y) (maximize y)",
    );
    assert_eq!(out, vec!["(minimize y -50)", "(maximize y -40)"]);
}

#[test]
fn distinct_forces_spread() {
    // Three pairwise-distinct values in a 3-value domain: sat; in a
    // 2-value domain: unsat (pigeonhole through the theory).
    let out = lines(
        "(declare-const a (Int 0 2)) (declare-const b (Int 0 2)) (declare-const c (Int 0 2))
         (assert (distinct a b)) (assert (distinct b c)) (assert (distinct a c))
         (check-sat)",
    );
    assert_eq!(out, vec!["sat"]);
    let out = lines(
        "(declare-const a (Int 0 1)) (declare-const b (Int 0 1)) (declare-const c (Int 0 1))
         (assert (distinct a b)) (assert (distinct b c)) (assert (distinct a c))
         (check-sat)",
    );
    assert_eq!(out, vec!["unsat"]);
}

#[test]
fn big_conjunction_of_window_constraints() {
    // A mined-rule-set-shaped problem: many implications over one window.
    let mut src = String::from(
        "(declare-const total (Int 0 300)) (declare-const ecn (Int 0 120))
         (declare-const egress (Int 0 300))
         (assert (<= egress total))
         (assert (=> (> ecn 0) (>= total 40)))\n",
    );
    for th in (10..200).step_by(10) {
        src.push_str(&format!(
            "(assert (=> (> total {th}) (>= egress {})))\n",
            th / 4
        ));
    }
    src.push_str("(assert (= total 200)) (minimize egress) (maximize ecn)");
    let out = lines(&src);
    // total = 200 > 190 ⇒ egress >= 47 (the tightest fired implication).
    assert_eq!(out[0], "(minimize egress 47)");
    assert_eq!(out[1], "(maximize ecn 120)");
}
