//! Warm-start equivalence: a persistent [`TheorySession`] checked against
//! the stateless [`check_conjunction`] oracle.
//!
//! The warm session carries its simplex basis (and the feasible point `β`)
//! across checks, so its Sat *models* and Unsat *cores* may differ from a
//! cold rebuild — but its verdicts must be semantically equivalent on every
//! check of any sequence:
//!
//! * same Sat/Unsat discriminant as a fresh single-check session,
//! * a Sat model satisfies every checked atom and every declared bound,
//! * an Unsat core holds valid indices whose sub-conjunction the oracle
//!   also rejects.
//!
//! A second family of tests pins the steady-state memory contract: the live
//! tableau is bounded by the declared variables plus the *distinct* atom
//! linear forms — not by the number of checks.

use proptest::prelude::*;

use lejit_smt::{
    check_conjunction, LinAtom, LinExpr, Solver, TermPool, TheoryConfig, TheorySession,
    TheoryVerdict, VarId,
};

/// A random conjunction problem: a shared variable box plus a sequence of
/// conjunctions checked one after another against the same warm session.
#[derive(Clone, Debug)]
struct WarmProblem {
    num_vars: usize,
    lo: i64,
    hi: i64,
    /// Each inner vec is one check's conjunction, as `(coeffs, constant)`
    /// rows meaning `Σ cᵢ·xᵢ + k ≤ 0`.
    checks: Vec<Vec<(Vec<i64>, i64)>>,
}

fn warm_problem() -> impl Strategy<Value = WarmProblem> {
    (2usize..=3, 0i64..=2, 4i64..=8).prop_flat_map(|(num_vars, lo, hi_off)| {
        let atom = (proptest::collection::vec(-3i64..=3, num_vars), -20i64..=20);
        proptest::collection::vec(proptest::collection::vec(atom, 0..=4), 1..=8).prop_map(
            move |checks| WarmProblem {
                num_vars,
                lo,
                hi: lo + hi_off,
                checks,
            },
        )
    })
}

fn build_pool(p: &WarmProblem) -> (TermPool, Vec<VarId>) {
    let mut pool = TermPool::new();
    let vars = (0..p.num_vars)
        .map(|i| pool.int_var(&format!("x{i}"), p.lo, p.hi))
        .collect();
    (pool, vars)
}

fn build_atoms(vars: &[VarId], rows: &[(Vec<i64>, i64)]) -> Vec<LinAtom> {
    rows.iter()
        .map(|(coeffs, constant)| {
            let mut e = LinExpr::constant(*constant);
            for (i, &c) in coeffs.iter().enumerate() {
                e.add_term(vars[i], c);
            }
            LinAtom { expr: e }
        })
        .collect()
}

/// Body of `warm_session_is_semantically_equivalent_to_fresh_oracle`, a
/// plain function to keep the `proptest!` macro small.
fn check_equivalence(p: &WarmProblem) {
    let (pool, vars) = build_pool(p);
    let config = TheoryConfig::default();
    let mut session = TheorySession::new();
    for (step, rows) in p.checks.iter().enumerate() {
        let atoms = build_atoms(&vars, rows);
        let warm = session.check(&pool, &atoms, config).unwrap();
        let fresh = check_conjunction(&pool, &atoms, config).unwrap();
        match (&warm, &fresh) {
            (TheoryVerdict::Sat(model), TheoryVerdict::Sat(_)) => {
                // The warm model need not equal the fresh model, but it must
                // be a *witness*: every atom and every declared bound holds.
                let assign = |v: VarId| model[&v];
                for (i, a) in atoms.iter().enumerate() {
                    prop_assert!(
                        a.holds(&assign),
                        "step {step}: warm model {model:?} violates atom {i}"
                    );
                }
                for &v in &vars {
                    let info = pool.var_info(v);
                    prop_assert!(
                        (info.lo..=info.hi).contains(&model[&v]),
                        "step {step}: warm model violates declared bounds of {}",
                        info.name
                    );
                }
            }
            (TheoryVerdict::Unsat(core), TheoryVerdict::Unsat(_)) => {
                // Valid indices, and the core alone must already be
                // inconsistent according to the stateless oracle.
                prop_assert!(core.iter().all(|&i| i < atoms.len()), "step {step}");
                let sub: Vec<LinAtom> = core.iter().map(|&i| atoms[i].clone()).collect();
                let sub_verdict = check_conjunction(&pool, &sub, config).unwrap();
                prop_assert!(
                    matches!(sub_verdict, TheoryVerdict::Unsat(_)),
                    "step {step}: warm core {core:?} is not itself unsat"
                );
            }
            _ => prop_assert!(
                false,
                "step {step}: warm verdict {warm:?} disagrees with fresh {fresh:?}"
            ),
        }
    }
}

/// Body of `tableau_is_bounded_by_distinct_linear_forms`.
fn check_tableau_bound(p: &WarmProblem) {
    let (pool, vars) = build_pool(p);
    let config = TheoryConfig::default();
    let mut session = TheorySession::new();
    // One full pass interns every distinct linear form the sequence uses.
    for rows in &p.checks {
        let atoms = build_atoms(&vars, rows);
        session.check(&pool, &atoms, config).unwrap();
    }
    let high_water = session.tableau_size();
    // Re-running the whole sequence (in any number of cycles) must not grow
    // the tableau: every row is answered by the interning map.
    for _ in 0..3 {
        for rows in &p.checks {
            let atoms = build_atoms(&vars, rows);
            session.check(&pool, &atoms, config).unwrap();
        }
    }
    prop_assert_eq!(
        session.tableau_size(),
        high_water,
        "tableau grew on re-checked conjunctions: rows are not interned"
    );
    // The bound itself: one simplex var per declared int var, plus at most
    // one slack row per *distinct* multi-variable linear form ever checked.
    let mut forms: std::collections::BTreeSet<Vec<(VarId, i64)>> =
        std::collections::BTreeSet::new();
    for rows in &p.checks {
        for a in &build_atoms(&vars, rows) {
            if a.expr.coeffs.len() > 1 {
                forms.insert(a.expr.coeffs.iter().map(|(&v, &c)| (v, c)).collect());
            }
        }
    }
    let (tab_vars, tab_rows) = session.tableau_size();
    prop_assert!(
        tab_rows <= forms.len(),
        "{tab_rows} slack rows for {} distinct multi-var forms",
        forms.len()
    );
    prop_assert!(tab_vars <= p.num_vars + tab_rows);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn warm_session_is_semantically_equivalent_to_fresh_oracle(p in warm_problem()) {
        check_equivalence(&p);
    }

    #[test]
    fn tableau_is_bounded_by_distinct_linear_forms(p in warm_problem()) {
        check_tableau_bound(&p);
    }
}

#[test]
fn solver_tableau_reaches_steady_state_under_framed_probing() {
    // The PR 5 high-water-mark methodology, applied to the theory tableau:
    // a long run of identical push/assert/check/pop frames against one
    // solver must hold `theory_tableau_size()` flat after the first frame —
    // the warm backend interns each frame's rows once and reuses them, so
    // session lifetime does not leak into tableau size.
    let mut s = Solver::new();
    let vars: Vec<_> = (0..5).map(|t| s.int_var(&format!("i{t}"), 0, 60)).collect();
    let terms: Vec<_> = vars.iter().map(|&v| s.var(v)).collect();
    let total = s.add(&terms);
    let hundred = s.int(100);
    let sum_eq = s.eq(total, hundred);
    s.assert(sum_eq);
    let mut sizes = Vec::new();
    for round in 0..12 {
        s.push();
        let c = s.int(17 + (round % 3));
        let eq = s.eq(terms[0], c);
        s.assert(eq);
        s.check().unwrap();
        s.pop();
        sizes.push(s.theory_tableau_size());
    }
    let warmup_max = sizes[..3].iter().max().copied().unwrap();
    for (i, &sz) in sizes.iter().enumerate().skip(3) {
        assert!(
            sz <= warmup_max,
            "round {i}: tableau {sz:?} exceeds warm-up high-water mark \
             {warmup_max:?} — slack rows are leaking (sizes: {sizes:?})"
        );
    }
}
