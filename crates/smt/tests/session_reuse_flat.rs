//! Long-lived-session flatness: per-cycle SAT cost must not grow with the
//! number of `push`/`assert`/`check`/`pop` cycles a warm solver has served.
//!
//! This pins the pooled-session contract behind `SessionPool` (PR 8): a
//! solver handed out warm over and over must charge each cycle for the
//! *live* assertion set only, not for its history. The leak this guards
//! against had four independent causes, each fixed in the SAT core or the
//! Tseitin encoder:
//!
//! 1. branching on variables that occur in no live clause (retired frames'
//!    orphans) — gated by per-variable live-occurrence counts;
//! 2. theory blocking lemmas pinning retired frames' atom variables —
//!    lemmas are now guarded by the innermost frame selector;
//! 3. permanent definitional (Tseitin) clauses keeping every atom ever
//!    encoded assignable — definitional clauses are now scoped to the frame
//!    that introduced them and re-emitted on cache hit when that frame is
//!    gone (keyed by never-reused frame *generation ids*, since selector
//!    variables are recycled);
//! 4. selector-variable churn growing the branching order forever —
//!    selectors are recycled through a free list on retraction.
//!
//! The cycle formulas deliberately *revisit* earlier constants so the
//! encode-cache-hit + re-emission path (the soundness-critical half of fix
//! 3) fires, and the test cross-checks every Sat model against the asserted
//! term so a stale-definition unsoundness fails loudly, not silently.

use lejit_smt::{SatResult, Solver};

#[test]
fn per_cycle_sat_cost_is_flat_across_pooled_reuse() {
    let mut s = Solver::new();
    let vars: Vec<_> = (0..5).map(|t| s.int_var(&format!("f{t}"), 0, 60)).collect();
    let terms: Vec<_> = vars.iter().map(|&v| s.var(v)).collect();
    let total = s.add(&terms);
    let hundred = s.int(100);
    let sum_eq = s.eq(total, hundred);
    s.assert(sum_eq);

    const CYCLES: usize = 40;
    let mut deltas = Vec::with_capacity(CYCLES);
    let mut prev = s.sat_stats();
    for round in 0..CYCLES {
        s.push();
        // Distinct-but-recurring constants: rounds 0..8 populate the encode
        // cache, later rounds hit it from frames whose originals are long
        // retracted, forcing definitional-clause re-emission.
        let c1 = s.int((round % 8) as i64 + 10);
        let c2 = s.int((round % 5) as i64 + 20);
        let eq1 = s.eq(terms[round % 5], c1);
        let eq2 = s.eq(terms[(round + 1) % 5], c2);
        let disj = s.or(&[eq1, eq2]);
        s.assert(disj);
        assert_eq!(s.check().unwrap(), SatResult::Sat, "round {round}");
        let model = s.model().unwrap().clone();
        assert!(
            model.eval_bool(s.pool(), disj) && model.eval_bool(s.pool(), sum_eq),
            "round {round}: model violates a live assertion — stale \
             definitional clauses are satisfying the formula variable"
        );
        s.pop();
        let now = s.sat_stats();
        deltas.push((now.decisions - prev.decisions) + (now.propagations - prev.propagations));
        prev = now;
    }

    // Steady state: the costliest late cycle must stay within a small
    // constant factor of the post-warm-up baseline. Before the fixes above,
    // per-cycle decisions grew linearly with round number (every retired
    // frame's variables stayed branchable), so late cycles blow far past
    // any constant multiple of the early ones.
    let baseline = *deltas[3..11].iter().max().unwrap();
    let late = *deltas[CYCLES - 8..].iter().max().unwrap();
    assert!(
        late <= baseline.saturating_mul(3).max(64),
        "late-cycle SAT work {late} exceeds 3x the warm-up high-water mark \
         {baseline}: retired frames are leaking into live search \
         (deltas: {deltas:?})"
    );
}
