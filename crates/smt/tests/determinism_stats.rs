//! Determinism regression test for the L1 lint family.
//!
//! The solver must be a pure function of its inputs: two runs of the same
//! workload in fresh processes-worth of state must take byte-identical
//! search paths. Hash-keyed containers would break this — `HashMap`'s
//! per-instance `RandomState` reorders iteration run to run, which changes
//! clause/atom ordering, which changes the CDCL search trajectory even when
//! the final verdicts agree. The static analyzer (`lejit-analyze`, lint
//! `determinism-hash-container`) proves the absence of such containers at
//! the token level; this test samples the same invariant dynamically by
//! comparing *search statistics*, which are far more ordering-sensitive
//! than verdicts: identical conflict/decision/propagation counts mean the
//! two runs explored the same tree in the same order.

use lejit_smt::{SatResult, Solver};

/// One representative workload: the paper's R1/R2 ruleset plus derived
/// queries (optimization, bounds, assumption probes) that exercise the SAT
/// core, the simplex, branch-and-bound, and the blocking-clause loop.
fn run_workload() -> (Vec<String>, lejit_smt::SolverStats, lejit_smt::SatStats) {
    let mut s = Solver::new();
    let vars: Vec<_> = (0..5).map(|t| s.int_var(&format!("i{t}"), 0, 60)).collect();
    let terms: Vec<_> = vars.iter().map(|&v| s.var(v)).collect();
    let total = s.add(&terms);
    let hundred = s.int(100);
    let sum_eq = s.eq(total, hundred);
    s.assert(sum_eq);
    // A disjunctive constraint so the SAT core actually branches.
    let thirty = s.int(30);
    let branches: Vec<_> = terms.iter().map(|&t| s.ge(t, thirty)).collect();
    let any_big = s.or(&branches);
    s.assert(any_big);

    let mut log = Vec::new();
    log.push(format!("{:?}", s.check().unwrap()));
    log.push(format!("{:?}", s.minimize(vars[0]).unwrap()));
    log.push(format!("{:?}", s.maximize(vars[0]).unwrap()));
    log.push(format!("{:?}", s.bounds(vars[1]).unwrap()));
    for (t, val) in [(0usize, 20i64), (1, 15), (2, 25)] {
        let c = s.int(val);
        let eq = s.eq(terms[t], c);
        s.assert(eq);
    }
    log.push(format!("{:?}", s.check().unwrap()));
    log.push(format!("{:?}", s.minimize(vars[3]).unwrap()));
    log.push(format!("{:?}", s.maximize(vars[3]).unwrap()));
    let c = s.int(41);
    let probe = s.eq(terms[3], c);
    log.push(format!("{:?}", s.check_assuming(&[probe]).unwrap()));
    assert_eq!(s.check().unwrap(), SatResult::Sat);
    if let Some(m) = s.model() {
        let assignment: Vec<i64> = vars.iter().map(|&v| m.int_value(v).unwrap()).collect();
        log.push(format!("{assignment:?}"));
    }
    (log, s.stats(), s.sat_stats())
}

#[test]
fn identical_statistics_across_runs() {
    let (log1, stats1, sat1) = run_workload();
    let (log2, stats2, sat2) = run_workload();
    assert_eq!(log1, log2, "query answers diverged between identical runs");
    assert_eq!(
        stats1, stats2,
        "DPLL(T) statistics diverged: the solver searched differently"
    );
    assert_eq!(
        sat1, sat2,
        "CDCL statistics diverged: conflict/decision/propagation order is \
         run-dependent (hash-ordering leak?)"
    );
    // The workload must be non-trivial, or the comparison proves nothing.
    assert!(
        sat1.propagations > 0,
        "workload never exercised the SAT core"
    );
    assert!(
        stats1.theory_checks > 0,
        "workload never reached the theory"
    );
    // The per-check cost profile must be exercised too, so the equality
    // above covers the warm-started theory backend's counters and not just
    // zeros: the tableau was built, pivoted, and (with repeated probes on
    // the same boolean model) answered at least once from the verdict memo.
    assert!(stats1.tableau_builds > 0, "tableau was never built");
    assert!(
        stats1.tableau_vars > 0,
        "no variables mirrored into tableau"
    );
    assert!(stats1.slack_rows_built > 0, "no slack rows interned");
    assert!(stats1.pivots > 0, "simplex never pivoted");
    assert!(
        stats1.slack_row_hits > 0,
        "repeated checks never reused an interned slack row"
    );
    assert!(
        stats1.theory_memo_hits > 0,
        "repeated probes never hit the theory-verdict memo"
    );
    // Fixing i0..i2 entails the polarity of the `i_t >= 30` branch atoms,
    // so the default-on theory propagation must fire — and its counters,
    // being part of `stats`, are covered by the equality checks above.
    assert!(
        stats1.theory_propagations > 0,
        "bound-entailed branch atoms were never theory-propagated"
    );
    assert!(
        stats1.encode_cache_hits > 0 && stats1.encode_cache_misses > 0,
        "Tseitin encode cache was not exercised on both paths"
    );
}
