//! The user-facing SMT solver: lazy DPLL(T) over the CDCL core and the LIA
//! theory, with selector-literal `push`/`pop` frames and min/max objective
//! queries.
//!
//! # Incrementality
//!
//! `push()` opens a frame guarded by a fresh *selector* SAT variable; every
//! assertion in the frame becomes the clause `¬sel ∨ formula-literal`.
//! `check()` solves under the assumption that all live selectors are true.
//! `pop()` physically **retracts** the frame: every clause mentioning the
//! selector — the frame's guarded assertions and any learnt clause whose
//! derivation resolved through them (such clauses necessarily carry the
//! `¬sel` tag, because selectors are only ever assumed at non-root decision
//! levels) — is deleted from the SAT core's database, with watch lists
//! repaired and the clause slots recycled. Clause-database size is therefore
//! bounded by the *live* assertions plus the learnt-clause cap, no matter
//! how many frames a long-running session opens and discards. Theory lemmas
//! (blocking clauses) are valid in LIA regardless of frames, so they are
//! added unguarded and persist across retractions, as do learnt clauses
//! derived purely from permanent clauses.

use std::collections::BTreeMap;

use crate::cnf::Encoder;
use crate::error::SolverError;
use crate::linear::LinAtom;
use crate::sat::{Lit, SatOutcome, SatSolver, SatStats, SatVar, TheoryPropagator};
use crate::term::{Sort, Term, TermId, TermPool, VarId};
use crate::theory::{TheoryConfig, TheorySession, TheoryVerdict};

/// The result of a satisfiability check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// Satisfiable; a model is available via [`Solver::model`].
    Sat,
    /// Unsatisfiable.
    Unsat,
    /// Undecided within the configured budgets.
    Unknown,
}

/// A satisfying assignment.
///
/// Values live in `BTreeMap`s so iteration order (and therefore anything
/// derived from a model, e.g. decode masks) is deterministic.
#[derive(Clone, Debug, Default)]
pub struct Model {
    ints: BTreeMap<VarId, i64>,
    bools: BTreeMap<VarId, bool>,
}

impl Model {
    /// The integer value of a variable (declared integer variables always
    /// have a value in a model).
    pub fn int_value(&self, v: VarId) -> Option<i64> {
        self.ints.get(&v).copied()
    }

    /// The boolean value of a variable. Booleans that never appeared in any
    /// asserted formula default to `false`.
    pub fn bool_value(&self, v: VarId) -> bool {
        self.bools.get(&v).copied().unwrap_or(false)
    }

    /// Iterates over `(variable, value)` pairs for every integer variable in
    /// the model, in ascending [`VarId`] order (deterministic). This is what
    /// lets callers carry a whole witness *model* forward: a model that
    /// remains consistent with a newly added constraint proves every one of
    /// its values feasible at once.
    pub fn ints(&self) -> impl Iterator<Item = (VarId, i64)> + '_ {
        self.ints.iter().map(|(&v, &n)| (v, n))
    }

    /// Evaluates an integer term under this model.
    pub fn eval_int(&self, pool: &TermPool, t: TermId) -> i64 {
        match pool.get(t) {
            Term::IntConst(n) => *n,
            Term::Var(v) => self.int_value(*v).expect("int var missing from model"),
            Term::Add(kids) => kids.iter().map(|&k| self.eval_int(pool, k)).sum(),
            Term::MulConst(c, inner) => c * self.eval_int(pool, *inner),
            other => panic!("eval_int on non-integer term {other:?}"),
        }
    }

    /// Evaluates a boolean term under this model.
    pub fn eval_bool(&self, pool: &TermPool, t: TermId) -> bool {
        match pool.get(t) {
            Term::True => true,
            Term::False => false,
            Term::Not(x) => !self.eval_bool(pool, *x),
            Term::And(kids) => kids.iter().all(|&k| self.eval_bool(pool, k)),
            Term::Or(kids) => kids.iter().any(|&k| self.eval_bool(pool, k)),
            Term::Var(v) => self.bool_value(*v),
            Term::Le(a, b) => self.eval_int(pool, *a) <= self.eval_int(pool, *b),
            other => panic!("eval_bool on non-boolean term {other:?}"),
        }
    }
}

/// Aggregate statistics for a [`Solver`], including the per-check cost
/// profile of the incremental theory backend (tableau-build vs pivot vs
/// branch-and-bound vs Tseitin-encode-cache work).
///
/// Every counter is deterministic: two runs of the same workload must
/// produce identical values (asserted by `tests/determinism_stats.rs` and
/// the `(LEJIT_THREADS, LEJIT_BATCH)` matrix suite in `lejit-core`).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SolverStats {
    /// `check()` calls (including internal ones from minimize/maximize).
    pub checks: u64,
    /// DPLL(T) iterations: SAT models proposed to the theory (including
    /// those answered by the verdict memo).
    pub theory_checks: u64,
    /// Theory conflicts (blocking clauses learned).
    pub theory_conflicts: u64,
    /// DPLL(T) iterations answered by the theory-verdict memo without
    /// touching the tableau (a subset of `theory_checks`).
    pub theory_memo_hits: u64,
    /// Tableau (re)build rounds in the theory session. A warm session
    /// builds once per declared-variable set; the historical fresh-per-check
    /// backend would count one per theory check.
    pub tableau_builds: u64,
    /// Simplex variables created (declared mirrors + slack rows).
    pub tableau_vars: u64,
    /// Slack rows translated and added to the tableau (interning misses).
    pub slack_rows_built: u64,
    /// Atom translations served by an already-interned slack row.
    pub slack_row_hits: u64,
    /// Simplex pivots performed.
    pub pivots: u64,
    /// Branch-and-bound nodes explored.
    pub bnb_nodes: u64,
    /// Tseitin encode-cache hits (terms answered without emitting clauses).
    pub encode_cache_hits: u64,
    /// Tseitin encode-cache misses (terms freshly encoded).
    pub encode_cache_misses: u64,
    /// Times this solver was handed out warm by a session pool
    /// ([`Solver::note_pool_events`]; zero for solvers that never lived in
    /// a pool).
    pub pool_hits: u64,
    /// Times a session pool had to build this solver fresh (a cold miss).
    pub pool_misses: u64,
    /// Pool evictions attributed to this solver's acquisition (sessions the
    /// pool dropped to stay within its per-key cap since the last acquire).
    pub pool_evictions: u64,
    /// Atom literals enqueued on the SAT trail by theory propagation —
    /// bound consequences the warm tableau derived between unit propagation
    /// and the next decision, instead of a later full check refuting them.
    ///
    /// ```
    /// use lejit_smt::{SatResult, Solver};
    ///
    /// let mut s = Solver::new();
    /// let x = s.int_var("x", 0, 10);
    /// let tx = s.var(x);
    /// let c3 = s.int(3);
    /// let le3 = s.le(tx, c3);
    /// s.assert(le3);
    /// // x ≤ 3 entails x ≤ 5 and refutes x ≥ 7: with propagation on (the
    /// // default) both disjuncts are decided by the theory, not by search.
    /// let c5 = s.int(5);
    /// let le5 = s.le(tx, c5);
    /// let c7 = s.int(7);
    /// let ge7 = s.ge(tx, c7);
    /// let disj = s.or(&[le5, ge7]);
    /// s.assert(disj);
    /// assert_eq!(s.check().unwrap(), SatResult::Sat);
    /// assert!(s.stats().theory_propagations >= 1);
    /// ```
    pub theory_propagations: u64,
    /// Theory reason clauses materialized on demand during conflict
    /// analysis — the subset of `theory_propagations` whose literal was
    /// actually resolved on by 1-UIP (the rest never paid for a clause).
    pub theory_explanations: u64,
}

/// Result of [`Solver::bounds`]: the feasible hull of an integer variable
/// plus the feasible values witnessed while computing it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarBounds {
    /// Minimum feasible value.
    pub lo: i64,
    /// Maximum feasible value.
    pub hi: i64,
    /// Distinct values of the variable seen in satisfying models during the
    /// search, sorted ascending. Every entry is proven feasible under the
    /// live assertions; `lo` and `hi` are always included.
    pub witnesses: Vec<i64>,
}

/// Result of [`Solver::interval_map`]: a partial classification of an
/// integer variable's feasible set, built from one round of range analysis.
///
/// Every value in `witnesses` is proven feasible (it appears in a model of
/// the live assertions); every value inside a `gaps` interval is proven
/// infeasible (an unsatisfiable range probe certified the whole interval at
/// once). Values in `[lo, hi]` covered by neither are undetermined — unless
/// `complete` is set, in which case `witnesses` is exactly the feasible set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntervalMap {
    /// Minimum feasible value.
    pub lo: i64,
    /// Maximum feasible value.
    pub hi: i64,
    /// Proven-feasible values, sorted ascending (always includes `lo`, `hi`).
    pub witnesses: Vec<i64>,
    /// Disjoint closed intervals inside `[lo, hi]` proven infeasible, sorted.
    pub gaps: Vec<(i64, i64)>,
    /// Whether `witnesses` is the *exact* feasible set (narrow ranges are
    /// enumerated outright instead of swept).
    pub complete: bool,
}

/// The maximal intervals of `[lo, hi]` containing none of `values`
/// (`values` must be sorted ascending).
fn gap_complement(lo: i64, hi: i64, values: &[i64]) -> Vec<(i64, i64)> {
    let mut gaps = Vec::new();
    let mut next = lo;
    for &v in values {
        if v > next {
            gaps.push((next, v - 1));
        }
        next = next.max(v + 1);
    }
    if next <= hi {
        gaps.push((next, hi));
    }
    gaps
}

/// Maximum DPLL(T) refinement iterations per `check()` before `Unknown`.
const MAX_REFINEMENTS: u64 = 100_000;

/// The [`TheoryPropagator`] a [`Solver`] hands to the SAT core during
/// `check()` when [`TheoryConfig::propagate`] is on: an adapter from trail
/// state to [`TheorySession::propagate`] calls, recording each propagated
/// literal's antecedents so `explain` can build the reason clause on demand.
///
/// Built fresh per `SatSolver::solve_with` call — antecedent records never
/// outlive the solve that produced them. That is sound because a literal's
/// reason is only consulted while the literal sits on the trail above the
/// root level, and every such literal is unassigned again when the next
/// solve starts (`cancel_until(0)`); theory-propagated literals *at* the
/// root level keep their lazy marker across solves but are never resolved
/// on (1-UIP skips root literals), so their explanations are never
/// requested.
struct SessionPropagator<'a> {
    pool: &'a TermPool,
    enc: &'a Encoder,
    theory: &'a mut TheorySession,
    atom_live: &'a [u32],
    /// Innermost frame selector at solve time. Explanation clauses are
    /// guarded with its negation so `retract` deletes them with the frame —
    /// an unguarded explanation would pin its atom variables live forever
    /// (the same argument as for theory blocking lemmas in
    /// [`Solver::check`]).
    guard: Option<Lit>,
    /// Antecedent literals of every propagation this solve, keyed by the
    /// propagated literal.
    antecedents: BTreeMap<Lit, Vec<Lit>>,
}

impl TheoryPropagator for SessionPropagator<'_> {
    fn propagate(&mut self, sat: &SatSolver) -> Result<Vec<Lit>, SolverError> {
        // Partition the live atom registry (in registry order, which makes
        // the propagation order deterministic) into asserted atoms and
        // unassigned candidates.
        let mut asserted: Vec<LinAtom> = Vec::new();
        let mut asserted_lits: Vec<Lit> = Vec::new();
        let mut candidates: Vec<LinAtom> = Vec::new();
        let mut cand_vars: Vec<SatVar> = Vec::new();
        for (i, (atom, sv)) in self.enc.atoms().iter().enumerate() {
            if self.atom_live.get(i).copied().unwrap_or(0) == 0 {
                continue;
            }
            // A literal this propagator itself placed earlier carries no
            // new information — it is entailed by the real assertions —
            // so it joins neither side of the partition: re-asserting it
            // would be a no-op bound assert, and as an antecedent it would
            // weaken explanations (the real assertions beneath it are the
            // better reason).
            if sat.reason_is_theory(*sv) {
                continue;
            }
            match sat.assigned_value(*sv) {
                Some(val) => {
                    asserted.push(if val { atom.clone() } else { atom.negated() });
                    asserted_lits.push(Lit::new(*sv, val));
                }
                // Only branchable variables are worth propagating: a var
                // with no live clause occurrence (e.g. an interval-probe
                // atom used purely as a `check_assuming` assumption) is
                // never decided and watches nothing, so enqueueing it costs
                // trail traffic without pruning any search.
                None if sat.is_branchable(*sv) => {
                    candidates.push(atom.clone());
                    cand_vars.push(*sv);
                }
                None => {}
            }
        }
        let props = self.theory.propagate(self.pool, &asserted, &candidates)?;
        let mut out = Vec::with_capacity(props.len());
        for p in props {
            let &sv = cand_vars
                .get(p.candidate)
                .ok_or(SolverError::Internal("propagated candidate out of range"))?;
            let lit = Lit::new(sv, p.value);
            let mut ants = Vec::with_capacity(p.antecedents.len());
            for ai in p.antecedents {
                ants.push(
                    *asserted_lits
                        .get(ai)
                        .ok_or(SolverError::Internal("propagation antecedent out of range"))?,
                );
            }
            self.antecedents.insert(lit, ants);
            out.push(lit);
        }
        Ok(out)
    }

    fn explain(&mut self, lit: Lit) -> Result<Vec<Lit>, SolverError> {
        let ants = self
            .antecedents
            .get(&lit)
            .ok_or(SolverError::Internal("explanation for unknown propagation"))?;
        let mut clause = Vec::with_capacity(ants.len() + 2);
        clause.push(lit);
        if let Some(g) = self.guard {
            clause.push(!g);
        }
        clause.extend(ants.iter().map(|&a| !a));
        Ok(clause)
    }
}

/// The SMT solver. See the [crate docs](crate) for an end-to-end example.
pub struct Solver {
    pool: TermPool,
    sat: SatSolver,
    enc: Encoder,
    theory: TheorySession,
    /// Deterministic theory-verdict memo, keyed by the asserted-atom
    /// fingerprint (the assigned atom literals in registry order). Valid
    /// regardless of frames: a conjunction's LIA status does not depend on
    /// which frame asserted it. Cleared when the declared-variable set
    /// grows (a memoized Sat model would be missing the new variables).
    theory_memo: BTreeMap<Vec<Lit>, TheoryVerdict>,
    /// Declared-variable count the memo entries were computed under.
    memo_vars: usize,
    frames: Vec<Lit>,
    /// Generation id per open frame, parallel to `frames`. Ids are
    /// allocated monotonically and never reused — unlike selector
    /// *variables*, which the SAT core recycles — so the encoder can use
    /// them to decide whether a cached term's definitional clauses (scoped
    /// to the frame that emitted them) are still attached.
    frame_ids: Vec<u64>,
    /// Next frame generation id.
    next_frame_id: u64,
    /// Per-frame atom cones: for each open frame, the registry indices of
    /// the atoms its assertions reference (with multiplicity), popped in
    /// lockstep with `frames` by [`Self::retract`].
    frame_atoms: Vec<Vec<u32>>,
    /// Live-assertion refcount per atom-registry index. An atom with count
    /// zero belongs only to retired (or never-asserted) encodings; theory
    /// checks skip it even when the SAT core assigned its variable — the
    /// permanent definitional clauses keep old atom variables decidable, and
    /// without this filter a long-lived session's theory checks would grow
    /// with everything it ever asserted instead of with what is live now.
    atom_live: Vec<u32>,
    model: Option<Model>,
    stats: SolverStats,
    theory_config: TheoryConfig,
}

/// Entry cap for the theory-verdict memo; the map is cleared wholesale when
/// full (deterministic, and cheaper than tracking recency).
const THEORY_MEMO_CAP: usize = 8192;

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            pool: TermPool::new(),
            sat: SatSolver::new(),
            enc: Encoder::new(),
            theory: TheorySession::new(),
            theory_memo: BTreeMap::new(),
            memo_vars: 0,
            frames: Vec::new(),
            frame_ids: Vec::new(),
            next_frame_id: 0,
            frame_atoms: Vec::new(),
            atom_live: Vec::new(),
            model: None,
            stats: SolverStats::default(),
            theory_config: TheoryConfig::default(),
        }
    }

    /// Read access to the term pool.
    pub fn pool(&self) -> &TermPool {
        &self.pool
    }

    /// Mutable access to the term pool (for building formulas externally).
    pub fn pool_mut(&mut self) -> &mut TermPool {
        &mut self.pool
    }

    /// Solver statistics, including the per-check theory cost profile
    /// (tableau-build / pivot / branch-and-bound / encode-cache counters
    /// read live from the theory session and the Tseitin encoder).
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        let t = self.theory.stats();
        s.tableau_builds = t.tableau_builds;
        s.tableau_vars = t.tableau_vars;
        s.slack_rows_built = t.slack_rows_built;
        s.slack_row_hits = t.slack_row_hits;
        s.bnb_nodes = t.bnb_nodes;
        s.pivots = self.theory.pivots();
        let (hits, misses) = self.enc.cache_stats();
        s.encode_cache_hits = hits;
        s.encode_cache_misses = misses;
        let sat = self.sat.stats();
        s.theory_propagations = sat.theory_propagations;
        s.theory_explanations = sat.theory_explanations;
        s
    }

    /// Credits session-pool traffic to this solver's statistics. Called by
    /// the pool that owns the enclosing session (e.g. `lejit-core`'s
    /// `SessionPool`) so warm-reuse observability flows through the same
    /// [`SolverStats`] → decode-stats → table pipeline as every other
    /// counter. Each pool event is attributed to exactly one solver, so
    /// summing these fields across sessions reproduces the pool's totals.
    /// Deterministic: pool traffic is a pure function of the request
    /// sequence, never of timing.
    pub fn note_pool_events(&mut self, hits: u64, misses: u64, evictions: u64) {
        self.stats.pool_hits += hits;
        self.stats.pool_misses += misses;
        self.stats.pool_evictions += evictions;
    }

    /// The theory configuration used by every check.
    pub fn theory_config(&self) -> TheoryConfig {
        self.theory_config
    }

    /// Replaces the theory configuration (e.g. a tiny branch-and-bound node
    /// budget to force [`SatResult::Unknown`] in tests). Memoized verdicts
    /// are kept: Sat/Unsat answers are budget-independent truths, and
    /// `Unknown` is never memoized.
    pub fn set_theory_config(&mut self, config: TheoryConfig) {
        self.theory_config = config;
    }

    /// Size of the warm theory tableau as `(variables, slack rows)`.
    /// Bounded by the declared variables plus the distinct atom linear
    /// forms ever checked — not by the number of checks (the steady-state
    /// regression tests assert this).
    pub fn theory_tableau_size(&self) -> (usize, usize) {
        self.theory.tableau_size()
    }

    /// Statistics of the underlying CDCL SAT core. Conflict, decision, and
    /// propagation counts are extremely sensitive to clause and literal
    /// ordering, which makes them a sharp probe for run-to-run determinism
    /// (see `tests/determinism_stats.rs`).
    pub fn sat_stats(&self) -> SatStats {
        self.sat.stats()
    }

    // --- term-building conveniences (delegate to the pool) ---------------

    /// Declares a bounded integer variable.
    pub fn int_var(&mut self, name: &str, lo: i64, hi: i64) -> VarId {
        self.pool.int_var(name, lo, hi)
    }

    /// Declares a boolean variable.
    pub fn bool_var(&mut self, name: &str) -> VarId {
        self.pool.bool_var(name)
    }

    /// A variable reference term.
    pub fn var(&mut self, v: VarId) -> TermId {
        self.pool.var(v)
    }

    /// An integer constant term.
    pub fn int(&mut self, n: i64) -> TermId {
        self.pool.int(n)
    }

    /// N-ary sum.
    pub fn add(&mut self, ts: &[TermId]) -> TermId {
        self.pool.add(ts)
    }

    /// Subtraction.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.sub(a, b)
    }

    /// Multiplication by a constant.
    pub fn mul_const(&mut self, c: i64, t: TermId) -> TermId {
        self.pool.mul_const(c, t)
    }

    /// `a ≤ b`.
    pub fn le(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.le(a, b)
    }

    /// `a < b`.
    pub fn lt(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.lt(a, b)
    }

    /// `a ≥ b`.
    pub fn ge(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.ge(a, b)
    }

    /// `a > b`.
    pub fn gt(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.gt(a, b)
    }

    /// `a = b`.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.eq(a, b)
    }

    /// `a ≠ b`.
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.ne(a, b)
    }

    /// N-ary conjunction.
    pub fn and(&mut self, ts: &[TermId]) -> TermId {
        self.pool.and(ts)
    }

    /// N-ary disjunction.
    pub fn or(&mut self, ts: &[TermId]) -> TermId {
        self.pool.or(ts)
    }

    /// Negation.
    pub fn not(&mut self, t: TermId) -> TermId {
        self.pool.not(t)
    }

    /// Implication.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        self.pool.implies(a, b)
    }

    // --- assertions and frames --------------------------------------------

    /// Asserts a boolean term in the current frame.
    pub fn assert(&mut self, t: TermId) {
        debug_assert_eq!(self.pool.sort_of(t), Sort::Bool);
        self.model = None;
        let guard = match (self.frames.last(), self.frame_ids.last()) {
            (Some(&sel), Some(&id)) => Some((sel, id)),
            _ => None,
        };
        let lit = self
            .enc
            .encode(&self.pool, &mut self.sat, t, guard, &self.frame_ids);
        // Refcount the assertion's atom cone: root asserts bump permanently,
        // frame asserts are recorded for the matching decrement on retract.
        if self.atom_live.len() < self.enc.atoms().len() {
            self.atom_live.resize(self.enc.atoms().len(), 0);
        }
        let cone = self.enc.cone(&self.pool, t);
        for &i in cone {
            self.atom_live[i as usize] += 1;
        }
        if !self.frames.is_empty() {
            let cone = cone.to_vec();
            if let Some(top) = self.frame_atoms.last_mut() {
                top.extend(cone);
            }
        }
        match self.frames.last() {
            Some(&sel) => {
                self.sat.add_clause(&[!sel, lit]);
            }
            None => {
                self.sat.add_clause(&[lit]);
            }
        }
    }

    /// Opens a new assertion frame.
    pub fn push(&mut self) {
        let v = self.sat.new_var();
        self.frames.push(Lit::new(v, true));
        self.frame_ids.push(self.next_frame_id);
        self.next_frame_id += 1;
        self.frame_atoms.push(Vec::new());
    }

    /// Discards the most recent frame and all its assertions. A `pop` with
    /// no open frame is a no-op (there is nothing to discard).
    pub fn pop(&mut self) {
        self.retract();
    }

    /// Physically retracts the most recent frame: the frame's guarded
    /// clauses and every learnt clause derived through them are deleted
    /// from the SAT core (see [`SatSolver::retract`]), so the clause
    /// database does not grow with the number of discarded frames.
    /// [`Self::pop`] is an alias. A retract with no open frame is a no-op.
    pub fn retract(&mut self) {
        if let Some(sel) = self.frames.pop() {
            self.frame_ids.pop();
            self.sat.retract(sel.var());
            if let Some(cone) = self.frame_atoms.pop() {
                for i in cone {
                    let c = &mut self.atom_live[i as usize];
                    *c = c.saturating_sub(1);
                }
            }
            self.model = None;
        }
    }

    /// Number of open frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Number of live clauses in the underlying SAT database (problem and
    /// learnt). After [`Self::retract`] this returns to its pre-`push`
    /// value, modulo learnt clauses derived purely from permanent clauses —
    /// the invariant the session-layer regression tests pin down.
    pub fn num_live_clauses(&self) -> usize {
        self.sat.num_live_clauses()
    }

    // --- solving ------------------------------------------------------------

    /// Checks satisfiability of all live assertions.
    ///
    /// `Err` means the query itself is broken (malformed clause database,
    /// arithmetic overflow, or an internal invariant violation) — it is not
    /// a third truth value and callers must not treat it as `Unsat`.
    pub fn check(&mut self) -> Result<SatResult, SolverError> {
        self.stats.checks += 1;
        self.model = None;
        let assumptions: Vec<Lit> = self.frames.clone();
        // A grown declared-variable set invalidates memoized Sat models
        // (they would be missing values for the new variables).
        if self.pool.vars().len() != self.memo_vars {
            self.theory_memo.clear();
            self.memo_vars = self.pool.vars().len();
        }

        for _ in 0..MAX_REFINEMENTS {
            // With propagation on, the SAT search consults the warm tableau
            // between unit propagation and every decision (see
            // [`SessionPropagator`]); off restores the pure lazy loop and
            // serves as the oracle for the differential tests.
            let outcome = if self.theory_config.propagate {
                let mut prop = SessionPropagator {
                    pool: &self.pool,
                    enc: &self.enc,
                    theory: &mut self.theory,
                    atom_live: &self.atom_live,
                    guard: self.frames.last().copied(),
                    antecedents: BTreeMap::new(),
                };
                self.sat.solve_with(&assumptions, Some(&mut prop))?
            } else {
                self.sat.solve(&assumptions)?
            };
            match outcome {
                SatOutcome::Unsat => return Ok(SatResult::Unsat),
                SatOutcome::Sat => {}
            }
            self.stats.theory_checks += 1;

            // Collect the theory atoms the SAT core actually assigned,
            // restricted to atoms some *live* assertion references
            // (`atom_live`): the permanent definitional clauses keep retired
            // encodings' atom variables assignable, but their truth values
            // carry no meaning for the live formula, and handing them to the
            // theory would make per-check cost grow with session history.
            let mut conj: Vec<LinAtom> = Vec::new();
            let mut asserted_lits: Vec<Lit> = Vec::new();
            for (i, (atom, sv)) in self.enc.atoms().iter().enumerate() {
                if self.atom_live.get(i).copied().unwrap_or(0) == 0 {
                    continue;
                }
                // Theory-propagated literals are *excluded*: each was
                // derived by bound subsumption from ordinary assertions
                // that are still on the trail beneath it (root-level
                // assignments persist to a Sat outcome), so the reduced
                // conjunction entails it — feasibility, the witness model,
                // and any Unsat core are unchanged, while the check stays
                // exactly as large as with propagation off and the memo
                // fingerprint matches the off-path one.
                if self.sat.reason_is_theory(*sv) {
                    continue;
                }
                if let Some(val) = self.sat.assigned_value(*sv) {
                    conj.push(if val { atom.clone() } else { atom.negated() });
                    asserted_lits.push(Lit::new(*sv, val));
                }
            }

            // Theory-verdict memo: the fingerprint (assigned atom literals
            // in registry order) determines `conj` exactly, so a hit can
            // replay the verdict — Sat witness or Unsat core — without
            // touching the tableau. Core indices stay valid because they
            // index the fingerprint itself.
            let verdict = match self.theory_memo.get(&asserted_lits) {
                Some(v) => {
                    self.stats.theory_memo_hits += 1;
                    v.clone()
                }
                None => {
                    let v = self.theory.check(&self.pool, &conj, self.theory_config)?;
                    if v != TheoryVerdict::Unknown {
                        if self.theory_memo.len() >= THEORY_MEMO_CAP {
                            self.theory_memo.clear();
                        }
                        self.theory_memo.insert(asserted_lits.clone(), v.clone());
                    }
                    v
                }
            };
            match verdict {
                TheoryVerdict::Sat(ints) => {
                    let mut bools = BTreeMap::new();
                    for (idx, info) in self.pool.vars().iter().enumerate() {
                        if info.sort == Sort::Bool {
                            let v = VarId(idx as u32);
                            if let Some(sv) = self.enc.bool_var(v) {
                                bools.insert(v, self.sat.model_value(sv));
                            }
                        }
                    }
                    self.model = Some(Model { ints, bools });
                    return Ok(SatResult::Sat);
                }
                TheoryVerdict::Unsat(core) => {
                    self.stats.theory_conflicts += 1;
                    if core.is_empty() {
                        // The theory found the *declared bounds* inconsistent,
                        // which cannot happen (lo <= hi); defensive fallback.
                        return Ok(SatResult::Unsat);
                    }
                    let mut blocking: Vec<Lit> = Vec::with_capacity(core.len() + 1);
                    // Guard the lemma with the innermost frame selector (when
                    // one is open) so `retract` deletes it with the frame.
                    // The lemma is theory-valid, so scoping it only loses
                    // cross-frame reuse — but an *unguarded* lemma would pin
                    // its atom variables live forever: in a long-lived pooled
                    // session, retired groundings' atoms would stay decidable,
                    // get re-asserted into every future theory check, and
                    // per-check cost would grow with session history instead
                    // of staying proportional to the live assertion set.
                    if let Some(sel) = self.frames.last() {
                        blocking.push(!*sel);
                    }
                    for &i in &core {
                        let l = asserted_lits
                            .get(i)
                            .ok_or(SolverError::Internal("theory core index out of range"))?;
                        blocking.push(!*l);
                    }
                    if !self.sat.add_clause(&blocking) {
                        return Ok(SatResult::Unsat);
                    }
                }
                TheoryVerdict::Unknown => return Ok(SatResult::Unknown),
            }
        }
        Ok(SatResult::Unknown)
    }

    /// Checks satisfiability of the live assertions *plus* the given
    /// temporary assumptions, which are discarded afterwards. Equivalent to
    /// `push(); assert(each); check(); pop()` — the model (on `Sat`) remains
    /// readable until the next solver call.
    pub fn check_assuming(&mut self, assumptions: &[TermId]) -> Result<SatResult, SolverError> {
        self.push();
        for &t in assumptions {
            self.assert(t);
        }
        let result = self.check();
        // `pop` would clear the model; keep it for the caller. The frame is
        // popped even when `check` failed, so the solver stays balanced.
        let model = self.model.take();
        self.pop();
        self.model = model;
        result
    }

    /// A **minimal** subset of `assumptions` that is jointly unsatisfiable
    /// with the live assertions (an *unsat core*), or `None` when the
    /// assumptions are satisfiable (or undecided within budgets).
    ///
    /// Deletion-based: one [`Self::check_assuming`] per assumption after the
    /// initial check, so the result is minimal — every element is necessary.
    /// Useful for explaining *why* a decode step was pruned.
    pub fn unsat_core(
        &mut self,
        assumptions: &[TermId],
    ) -> Result<Option<Vec<TermId>>, SolverError> {
        if self.check_assuming(assumptions)? != SatResult::Unsat {
            return Ok(None);
        }
        let mut core: Vec<TermId> = assumptions.to_vec();
        let mut i = 0;
        while i < core.len() {
            let mut candidate = core.clone();
            candidate.remove(i);
            if self.check_assuming(&candidate)? == SatResult::Unsat {
                core = candidate; // the i-th assumption was redundant
            } else {
                i += 1; // necessary (or undecided): keep it
            }
        }
        Ok(Some(core))
    }

    /// The model from the most recent successful [`Self::check`].
    pub fn model(&self) -> Option<&Model> {
        self.model.as_ref()
    }

    // --- optimization ---------------------------------------------------

    /// The minimum feasible value of integer variable `v`, or `None` if the
    /// formula is unsatisfiable or undecided.
    ///
    /// Implemented as binary search on satisfiability (each probe is a
    /// `push`/`assert`/`check`/`pop`), exactly the loop LeJIT uses to compute
    /// feasible ranges during decoding.
    pub fn minimize(&mut self, v: VarId) -> Result<Option<i64>, SolverError> {
        self.optimize(v, true)
    }

    /// The maximum feasible value of integer variable `v` (see [`Self::minimize`]).
    pub fn maximize(&mut self, v: VarId) -> Result<Option<i64>, SolverError> {
        self.optimize(v, false)
    }

    /// The feasible range of integer variable `v` plus every feasible value
    /// witnessed along the way, or `None` if the formula is unsatisfiable or
    /// undecided.
    ///
    /// Cheaper than [`Self::minimize`] followed by [`Self::maximize`]: the
    /// initial satisfiability check is shared between the two binary
    /// searches, and every satisfying model seen during the search
    /// contributes its value of `v` to [`VarBounds::witnesses`]. Each
    /// witness is the value of `v` in a model of the live assertions, so
    /// callers can treat witnesses as *proven-feasible* values without any
    /// further solver query.
    pub fn bounds(&mut self, v: VarId) -> Result<Option<VarBounds>, SolverError> {
        let info = self.pool.var_info(v).clone();
        assert_eq!(info.sort, Sort::Int, "bounds on non-integer variable");
        if self.check()? != SatResult::Sat {
            return Ok(None);
        }
        let witness = self.model_int(v)?;
        let mut witnesses = vec![witness];
        let Some(lo) = self.bound_search(v, info.lo, witness, true, &mut witnesses)? else {
            return Ok(None);
        };
        let Some(hi) = self.bound_search(v, witness, info.hi, false, &mut witnesses)? else {
            return Ok(None);
        };
        witnesses.sort_unstable();
        witnesses.dedup();
        Ok(Some(VarBounds { lo, hi, witnesses }))
    }

    /// The value of `v` in the current model; `Err` if there is no model
    /// (callers only use this right after a `Sat` answer).
    fn model_int(&self, v: VarId) -> Result<i64, SolverError> {
        self.model
            .as_ref()
            .and_then(|m| m.int_value(v))
            .ok_or(SolverError::Internal("model missing after Sat answer"))
    }

    /// One direction of the [`Self::bounds`] binary search. On entry the
    /// `witness`-side endpoint is known feasible; satisfying probes tighten
    /// using the model value of `v` (which can overshoot `mid`), not just
    /// `mid` itself.
    fn bound_search(
        &mut self,
        v: VarId,
        mut lo: i64,
        mut hi: i64,
        minimize: bool,
        witnesses: &mut Vec<i64>,
    ) -> Result<Option<i64>, SolverError> {
        while lo < hi {
            // Biased toward lo. `lo + span/2` cannot pass `hi`, but the span
            // itself overflows when the hull straddles most of the i64 range.
            let span = hi
                .checked_sub(lo)
                .ok_or(SolverError::Overflow("bound_search span"))?;
            let mid = lo
                .checked_add(span / 2)
                .ok_or(SolverError::Overflow("bound_search midpoint"))?;
            let vt = self.var(v);
            let c = self.int(mid);
            let probe = if minimize {
                self.le(vt, c)
            } else {
                let c1 = self.int(mid + 1);
                self.ge(vt, c1)
            };
            match self.check_assuming(&[probe])? {
                SatResult::Sat => {
                    let w = self.model_int(v)?;
                    witnesses.push(w);
                    if minimize {
                        hi = w.min(mid);
                    } else {
                        lo = w.max(mid + 1);
                    }
                }
                SatResult::Unsat if minimize => lo = mid + 1,
                SatResult::Unsat => hi = mid,
                SatResult::Unknown => return Ok(None),
            }
        }
        Ok(Some(lo))
    }

    /// One round of interval analysis of `v`: the feasible hull plus a
    /// classification of the values inside it, built on [`Self::bounds`].
    ///
    /// If the hull is at most `enumerate_width` values wide the exact
    /// feasible set is computed by solve-and-block enumeration and
    /// [`IntervalMap::complete`] is set. Otherwise each `stride`-aligned
    /// bucket intersecting the hull is probed once: a satisfiable bucket
    /// contributes a witness, an unsatisfiable one becomes a certified gap
    /// (every value in it is proven infeasible by a single UNSAT answer).
    /// Buckets the solver cannot decide are left unclassified, which is
    /// sound: callers treat unclassified values as "unknown".
    ///
    /// Returns `None` when the live assertions are unsatisfiable or the
    /// initial bound search is undecided.
    pub fn interval_map(
        &mut self,
        v: VarId,
        stride: i64,
        enumerate_width: i64,
    ) -> Result<Option<IntervalMap>, SolverError> {
        assert!(stride > 0, "interval_map stride must be positive");
        let Some(VarBounds {
            lo,
            hi,
            mut witnesses,
        }) = self.bounds(v)?
        else {
            return Ok(None);
        };
        if hi - lo < enumerate_width {
            if let Some(values) = self.feasible_values_in(v, lo, hi, &witnesses)? {
                let gaps = gap_complement(lo, hi, &values);
                return Ok(Some(IntervalMap {
                    lo,
                    hi,
                    witnesses: values,
                    gaps,
                    complete: true,
                }));
            }
            // Enumeration went Unknown: fall back to the swept partial map.
        }
        let mut gaps = Vec::new();
        let mut harvested = Vec::new();
        let mut wi = 0usize;
        let mut bucket = lo - lo.rem_euclid(stride);
        while bucket <= hi {
            // The last bucket's upper edge can pass i64::MAX before `.min(hi)`
            // clamps it; an overflowed edge is >= i64::MAX >= hi.
            let edge = match bucket.checked_add(stride) {
                Some(next) => next - 1, // stride > 0, so next > i64::MIN
                None => i64::MAX,
            };
            let (a, b) = (bucket.max(lo), edge.min(hi));
            while wi < witnesses.len() && witnesses[wi] < a {
                wi += 1;
            }
            let has_witness = wi < witnesses.len() && witnesses[wi] <= b;
            if !has_witness {
                let vt = self.var(v);
                let (ca, cb) = (self.int(a), self.int(b));
                let ge = self.ge(vt, ca);
                let le = self.le(vt, cb);
                match self.check_assuming(&[ge, le])? {
                    SatResult::Sat => {
                        harvested.push(self.model_int(v)?);
                    }
                    SatResult::Unsat => gaps.push((a, b)),
                    SatResult::Unknown => {} // bucket stays unclassified
                }
            }
            bucket = match bucket.checked_add(stride) {
                // Past i64::MAX means past `hi`: the sweep is done.
                None => break,
                Some(next) => next,
            };
        }
        witnesses.extend(harvested);
        witnesses.sort_unstable();
        witnesses.dedup();
        Ok(Some(IntervalMap {
            lo,
            hi,
            witnesses,
            gaps,
            complete: false,
        }))
    }

    /// The exact feasible subset of `[lo, hi]` for `v`, computed by
    /// solve-and-block enumeration: repeatedly find a model with `v` in the
    /// range and none of the values found so far, until UNSAT. Values in
    /// `known` are assumed already proven feasible and are blocked up front
    /// rather than re-discovered. Returns `None` if the solver answers
    /// `Unknown` mid-enumeration (the partial set would be unsound to treat
    /// as exact).
    pub fn feasible_values_in(
        &mut self,
        v: VarId,
        lo: i64,
        hi: i64,
        known: &[i64],
    ) -> Result<Option<Vec<i64>>, SolverError> {
        let mut found: Vec<i64> = known
            .iter()
            .copied()
            .filter(|w| (lo..=hi).contains(w))
            .collect();
        found.sort_unstable();
        found.dedup();
        let width = hi
            .checked_sub(lo)
            .and_then(|w| w.checked_add(1))
            .ok_or(SolverError::Overflow("feasible_values_in width"))? as usize;
        while found.len() < width {
            let vt = self.var(v);
            let (ca, cb) = (self.int(lo), self.int(hi));
            let ge = self.ge(vt, ca);
            let le = self.le(vt, cb);
            let mut assumptions = vec![ge, le];
            for &w in &found {
                let cw = self.int(w);
                let eq = self.eq(vt, cw);
                let neq = self.not(eq);
                assumptions.push(neq);
            }
            match self.check_assuming(&assumptions)? {
                SatResult::Sat => {
                    let w = self.model_int(v)?;
                    debug_assert!((lo..=hi).contains(&w));
                    let pos = found.partition_point(|&x| x < w);
                    debug_assert!(found.get(pos) != Some(&w), "blocked value re-found");
                    found.insert(pos, w);
                }
                SatResult::Unsat => break,
                SatResult::Unknown => return Ok(None),
            }
        }
        Ok(Some(found))
    }

    fn optimize(&mut self, v: VarId, minimize: bool) -> Result<Option<i64>, SolverError> {
        let info = self.pool.var_info(v).clone();
        assert_eq!(info.sort, Sort::Int, "optimize on non-integer variable");
        if self.check()? != SatResult::Sat {
            return Ok(None);
        }
        let witness = self.model_int(v)?;
        let (mut lo, mut hi) = if minimize {
            (info.lo, witness)
        } else {
            (witness, info.hi)
        };
        // Invariant: a feasible witness exists at `witness`-side endpoint.
        while lo < hi {
            // Same midpoint hazard as bound_search: declared-bound hulls can
            // straddle most of the i64 range.
            let span = hi
                .checked_sub(lo)
                .ok_or(SolverError::Overflow("optimize span"))?;
            let mid = lo
                .checked_add(span / 2)
                .ok_or(SolverError::Overflow("optimize midpoint"))?;
            let vt = self.var(v);
            let c = self.int(mid);
            let probe = if minimize {
                self.le(vt, c)
            } else {
                let c1 = self.int(mid + 1);
                self.ge(vt, c1)
            };
            self.push();
            self.assert(probe);
            let r = self.check();
            self.pop();
            match r? {
                SatResult::Sat if minimize => hi = mid,
                SatResult::Sat => lo = mid + 1,
                SatResult::Unsat if minimize => lo = mid + 1,
                SatResult::Unsat => hi = mid,
                SatResult::Unknown => return Ok(None),
            }
        }
        Ok(Some(lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_sat_model() {
        let mut s = Solver::new();
        let x = s.int_var("x", 0, 10);
        let tx = s.var(x);
        let c = s.int(7);
        let f = s.ge(tx, c);
        s.assert(f);
        assert_eq!(s.check().unwrap(), SatResult::Sat);
        let m = s.model().unwrap();
        assert!(m.int_value(x).unwrap() >= 7);
        assert!(m.eval_bool(s.pool(), f));
    }

    #[test]
    fn basic_unsat() {
        let mut s = Solver::new();
        let x = s.int_var("x", 0, 10);
        let tx = s.var(x);
        let c4 = s.int(4);
        let c3 = s.int(3);
        let f1 = s.ge(tx, c4);
        let f2 = s.le(tx, c3);
        s.assert(f1);
        s.assert(f2);
        assert_eq!(s.check().unwrap(), SatResult::Unsat);
        assert!(s.model().is_none());
    }

    #[test]
    fn disjunction_needs_theory_refinement() {
        // (x <= 3 or x >= 7) and x = 5 is propositionally satisfiable; only
        // the theory refutes it. With propagation off that takes a blocking
        // lemma; with propagation on (the default) the tableau refutes both
        // disjuncts directly on the trail, before any lemma is needed.
        let run = |propagate: bool| {
            let mut s = Solver::new();
            s.set_theory_config(TheoryConfig {
                propagate,
                ..TheoryConfig::default()
            });
            let x = s.int_var("x", 0, 10);
            let tx = s.var(x);
            let c3 = s.int(3);
            let c7 = s.int(7);
            let c5 = s.int(5);
            let a = s.le(tx, c3);
            let b = s.ge(tx, c7);
            let disj = s.or(&[a, b]);
            let eq = s.eq(tx, c5);
            s.assert(disj);
            s.assert(eq);
            let r = s.check().unwrap();
            (r, s.stats())
        };
        let (off, off_stats) = run(false);
        assert_eq!(off, SatResult::Unsat);
        assert!(off_stats.theory_conflicts >= 1);
        assert_eq!(off_stats.theory_propagations, 0);
        let (on, on_stats) = run(true);
        assert_eq!(on, SatResult::Unsat);
        assert!(on_stats.theory_propagations >= 1);
    }

    #[test]
    fn push_pop_isolation() {
        let mut s = Solver::new();
        let x = s.int_var("x", 0, 10);
        let tx = s.var(x);
        let c5 = s.int(5);
        let f = s.le(tx, c5);
        s.assert(f);
        assert_eq!(s.check().unwrap(), SatResult::Sat);

        s.push();
        let c6 = s.int(6);
        let g = s.ge(tx, c6);
        s.assert(g);
        assert_eq!(s.check().unwrap(), SatResult::Unsat);
        s.pop();

        assert_eq!(s.check().unwrap(), SatResult::Sat);
        // Nested frames.
        s.push();
        let c2 = s.int(2);
        let h = s.ge(tx, c2);
        s.assert(h);
        s.push();
        let c3 = s.int(3);
        let i = s.le(tx, c3);
        s.assert(i);
        assert_eq!(s.check().unwrap(), SatResult::Sat);
        let m = s.model().unwrap().int_value(x).unwrap();
        assert!((2..=3).contains(&m));
        s.pop();
        s.pop();
        assert_eq!(s.check().unwrap(), SatResult::Sat);
    }

    #[test]
    fn paper_lookahead_example() {
        // Fig. 1b: I_t in [0,60], sum = 100, I0..I2 = 20,15,25.
        // The feasible region for I3 must be [0, 40].
        let mut s = Solver::new();
        let vars: Vec<VarId> = (0..5).map(|t| s.int_var(&format!("i{t}"), 0, 60)).collect();
        let terms: Vec<TermId> = vars.iter().map(|&v| s.var(v)).collect();
        let total = s.add(&terms);
        let hundred = s.int(100);
        let f = s.eq(total, hundred);
        s.assert(f);
        for (t, val) in [(0usize, 20i64), (1, 15), (2, 25)] {
            let c = s.int(val);
            let eq = s.eq(terms[t], c);
            s.assert(eq);
        }
        assert_eq!(s.minimize(vars[3]).unwrap(), Some(0));
        assert_eq!(s.maximize(vars[3]).unwrap(), Some(40));
        // After fixing I3 = 39, I4 is forced to exactly 1 (step 5 in Fig 1b).
        let c39 = s.int(39);
        let eq = s.eq(terms[3], c39);
        s.assert(eq);
        assert_eq!(s.minimize(vars[4]).unwrap(), Some(1));
        assert_eq!(s.maximize(vars[4]).unwrap(), Some(1));
    }

    #[test]
    fn rule_r3_implication() {
        // R3: Congestion > 0 → max I_t >= BW/2 (= 30).
        let mut s = Solver::new();
        let congestion = s.int_var("congestion", 0, 100);
        let vars: Vec<VarId> = (0..5).map(|t| s.int_var(&format!("i{t}"), 0, 60)).collect();
        let terms: Vec<TermId> = vars.iter().map(|&v| s.var(v)).collect();
        let tc = s.var(congestion);
        let zero = s.int(0);
        let thirty = s.int(30);
        let cond = s.gt(tc, zero);
        let burst = s.pool_mut().max_ge(&terms, thirty);
        let r3 = s.implies(cond, burst);
        s.assert(r3);
        // With congestion = 8 and all I_t <= 20, unsat.
        s.push();
        let c8 = s.int(8);
        let ceq = s.eq(tc, c8);
        s.assert(ceq);
        let twenty = s.int(20);
        let capped = s.pool_mut().max_le(&terms, twenty);
        s.assert(capped);
        assert_eq!(s.check().unwrap(), SatResult::Unsat);
        s.pop();
        // With congestion = 0 the cap is fine.
        let czero = s.eq(tc, zero);
        s.assert(czero);
        let twenty = s.int(20);
        let capped = s.pool_mut().max_le(&terms, twenty);
        s.assert(capped);
        assert_eq!(s.check().unwrap(), SatResult::Sat);
    }

    #[test]
    fn minimize_maximize_unconstrained_hit_declared_bounds() {
        let mut s = Solver::new();
        let x = s.int_var("x", -5, 12);
        assert_eq!(s.minimize(x).unwrap(), Some(-5));
        assert_eq!(s.maximize(x).unwrap(), Some(12));
    }

    #[test]
    fn minimize_on_unsat_returns_none() {
        let mut s = Solver::new();
        let x = s.int_var("x", 0, 10);
        let tx = s.var(x);
        let c11 = s.int(11);
        let f = s.ge(tx, c11);
        s.assert(f);
        assert_eq!(s.minimize(x).unwrap(), None);
    }

    #[test]
    fn bounds_agree_with_minimize_maximize() {
        let mut s = Solver::new();
        let x = s.int_var("x", 0, 100);
        let y = s.int_var("y", 0, 100);
        let tx = s.var(x);
        let ty = s.var(y);
        let sum = s.add(&[tx, ty]);
        let c = s.int(70);
        let f = s.eq(sum, c);
        s.assert(f);
        let c55 = s.int(55);
        let cap = s.le(ty, c55);
        s.assert(cap);
        // x + y = 70, y <= 55 → x ∈ [15, 70].
        let b = s.bounds(x).unwrap().unwrap();
        assert_eq!((b.lo, b.hi), (15, 70));
        assert_eq!(s.minimize(x).unwrap(), Some(b.lo));
        assert_eq!(s.maximize(x).unwrap(), Some(b.hi));
    }

    #[test]
    fn bounds_witnesses_are_feasible_and_cover_endpoints() {
        let mut s = Solver::new();
        let x = s.int_var("x", -5, 90);
        let tx = s.var(x);
        let c3 = s.int(3);
        let c77 = s.int(77);
        let ge = s.ge(tx, c3);
        let le = s.le(tx, c77);
        s.assert(ge);
        s.assert(le);
        let b = s.bounds(x).unwrap().unwrap();
        assert_eq!((b.lo, b.hi), (3, 77));
        assert!(b.witnesses.contains(&b.lo));
        assert!(b.witnesses.contains(&b.hi));
        assert!(
            b.witnesses.windows(2).all(|w| w[0] < w[1]),
            "sorted, deduped"
        );
        for &w in &b.witnesses {
            let c = s.int(w);
            let eq = s.eq(tx, c);
            assert_eq!(
                s.check_assuming(&[eq]).unwrap(),
                SatResult::Sat,
                "witness {w}"
            );
        }
    }

    #[test]
    fn bounds_on_unsat_returns_none() {
        let mut s = Solver::new();
        let x = s.int_var("x", 0, 10);
        let tx = s.var(x);
        let c11 = s.int(11);
        let f = s.ge(tx, c11);
        s.assert(f);
        assert!(s.bounds(x).unwrap().is_none());
    }

    #[test]
    fn bounds_shares_the_initial_check() {
        // minimize + maximize issue two initial checks; bounds issues one.
        // Two identically-built solvers: the warm theory basis carries model
        // state across queries, so measuring both sequences on one solver
        // would let the first sequence's final vertex skew the second's
        // witness-guided binary search.
        let mut a = Solver::new();
        let xa = a.int_var("x", 0, 40);
        let _ = a.minimize(xa);
        let _ = a.maximize(xa);
        let separate = a.stats().checks;
        let mut b = Solver::new();
        let xb = b.int_var("x", 0, 40);
        let _ = b.bounds(xb);
        let combined = b.stats().checks;
        assert!(
            combined < separate,
            "bounds ({combined} checks) should beat minimize+maximize ({separate})"
        );
    }

    #[test]
    fn boolean_variables_in_models() {
        let mut s = Solver::new();
        let b = s.bool_var("flag");
        let x = s.int_var("x", 0, 10);
        let tb = s.var(b);
        let tx = s.var(x);
        let c5 = s.int(5);
        let ge = s.ge(tx, c5);
        let f = s.iff_helper(tb, ge);
        s.assert(f);
        let nb = s.not(tb);
        s.assert(nb);
        assert_eq!(s.check().unwrap(), SatResult::Sat);
        let m = s.model().unwrap();
        assert!(!m.bool_value(b));
        assert!(m.int_value(x).unwrap() < 5);
    }

    impl Solver {
        fn iff_helper(&mut self, a: TermId, b: TermId) -> TermId {
            self.pool_mut().iff(a, b)
        }
    }

    #[test]
    fn model_evaluates_asserted_formula_true() {
        let mut s = Solver::new();
        let vars: Vec<VarId> = (0..4).map(|t| s.int_var(&format!("v{t}"), 0, 50)).collect();
        let terms: Vec<TermId> = vars.iter().map(|&v| s.var(v)).collect();
        let total = s.add(&terms);
        let c = s.int(77);
        let f1 = s.eq(total, c);
        let c10 = s.int(10);
        let f2 = s.ge(terms[0], c10);
        let c40 = s.int(40);
        let f2b = s.ge(terms[1], c40);
        let f3 = s.or(&[f2, f2b]);
        let all = s.and(&[f1, f3]);
        s.assert(all);
        assert_eq!(s.check().unwrap(), SatResult::Sat);
        let m = s.model().unwrap().clone();
        assert!(m.eval_bool(s.pool(), all));
    }
}

#[cfg(test)]
mod check_assuming_tests {
    use super::*;

    #[test]
    fn assumptions_do_not_persist() {
        let mut s = Solver::new();
        let x = s.int_var("x", 0, 10);
        let tx = s.var(x);
        let c5 = s.int(5);
        let le5 = s.le(tx, c5);
        s.assert(le5);

        let c6 = s.int(6);
        let ge6 = s.ge(tx, c6);
        assert_eq!(s.check_assuming(&[ge6]).unwrap(), SatResult::Unsat);
        // The assumption is gone: plain check is satisfiable again.
        assert_eq!(s.check().unwrap(), SatResult::Sat);
        assert!(s.model().unwrap().int_value(x).unwrap() <= 5);
    }

    #[test]
    fn model_survives_check_assuming() {
        let mut s = Solver::new();
        let x = s.int_var("x", 0, 10);
        let tx = s.var(x);
        let c3 = s.int(3);
        let eq = s.eq(tx, c3);
        assert_eq!(s.check_assuming(&[eq]).unwrap(), SatResult::Sat);
        assert_eq!(s.model().unwrap().int_value(x), Some(3));
    }

    #[test]
    fn multiple_assumptions_conjoin() {
        let mut s = Solver::new();
        let x = s.int_var("x", 0, 10);
        let y = s.int_var("y", 0, 10);
        let (tx, ty) = (s.var(x), s.var(y));
        let total = s.add(&[tx, ty]);
        let c12 = s.int(12);
        let sum_eq = s.eq(total, c12);
        let c7 = s.int(7);
        let x_ge = s.ge(tx, c7);
        assert_eq!(s.check_assuming(&[sum_eq, x_ge]).unwrap(), SatResult::Sat);
        let m = s.model().unwrap();
        let (xv, yv) = (m.int_value(x).unwrap(), m.int_value(y).unwrap());
        assert_eq!(xv + yv, 12);
        assert!(xv >= 7);
    }
}

#[cfg(test)]
mod unsat_core_tests {
    use super::*;

    #[test]
    fn core_isolates_the_conflict() {
        let mut s = Solver::new();
        let x = s.int_var("x", 0, 10);
        let y = s.int_var("y", 0, 10);
        let (tx, ty) = (s.var(x), s.var(y));
        // Assumptions: x >= 7 (A), x <= 3 (B) — conflicting — and two
        // irrelevant ones about y.
        let c7 = s.int(7);
        let a = s.ge(tx, c7);
        let c3 = s.int(3);
        let b = s.le(tx, c3);
        let c5 = s.int(5);
        let y_le = s.le(ty, c5);
        let c1 = s.int(1);
        let y_ge = s.ge(ty, c1);
        let core = s
            .unsat_core(&[y_le, a, y_ge, b])
            .unwrap()
            .expect("conflicting");
        assert_eq!(core.len(), 2);
        assert!(core.contains(&a) && core.contains(&b), "core kept noise");
    }

    #[test]
    fn satisfiable_assumptions_have_no_core() {
        let mut s = Solver::new();
        let x = s.int_var("x", 0, 10);
        let tx = s.var(x);
        let c5 = s.int(5);
        let f = s.le(tx, c5);
        assert_eq!(s.unsat_core(&[f]).unwrap(), None);
    }

    #[test]
    fn core_interacts_with_permanent_assertions() {
        // Permanent: x + y == 10. Assumptions: x >= 8 (A), y >= 8 (B) —
        // each fine alone, conflicting together; both must be in the core.
        let mut s = Solver::new();
        let x = s.int_var("x", 0, 10);
        let y = s.int_var("y", 0, 10);
        let (tx, ty) = (s.var(x), s.var(y));
        let total = s.add(&[tx, ty]);
        let c10 = s.int(10);
        let sum_eq = s.eq(total, c10);
        s.assert(sum_eq);
        let c8 = s.int(8);
        let a = s.ge(tx, c8);
        let b = s.ge(ty, c8);
        let core = s.unsat_core(&[a, b]).unwrap().expect("jointly conflicting");
        assert_eq!(core.len(), 2);
        // Solver is still usable afterwards.
        assert_eq!(s.check().unwrap(), SatResult::Sat);
    }
}
