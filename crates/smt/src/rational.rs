//! Exact rational arithmetic over `i128`.
//!
//! The simplex core needs exact arithmetic: floating point would make
//! feasibility answers unsound, and unsound feasibility answers would let the
//! decoder emit rule-violating tokens. Values in the LeJIT workloads are
//! small (bytes-per-window counters, at most ~10⁷), so `i128` numerators and
//! denominators with eager normalization never overflow in practice; all
//! operations are checked and panic on overflow rather than silently wrap.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An exact rational number `num / den` with `den > 0` and `gcd(num, den) = 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

const fn const_abs(x: i128) -> i128 {
    if x < 0 {
        -x
    } else {
        x
    }
}

const fn const_gcd(mut a: i128, mut b: i128) -> i128 {
    a = const_abs(a);
    b = const_abs(b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a rational from a numerator and denominator.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rational {
        assert!(den != 0, "rational with zero denominator");
        let g = const_gcd(num, den);
        let sign = if den < 0 { -1 } else { 1 };
        if g == 0 {
            return Rational { num: 0, den: 1 };
        }
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Creates a rational from an integer.
    pub const fn from_int(n: i64) -> Rational {
        Rational {
            num: n as i128,
            den: 1,
        }
    }

    /// The numerator (after normalization).
    pub fn num(&self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub fn den(&self) -> i128 {
        self.den
    }

    /// Whether this rational is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Whether this rational is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Whether this rational is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Whether this rational is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> i128 {
        if self.num >= 0 {
            self.num / self.den
        } else {
            -((-self.num + self.den - 1) / self.den)
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> i128 {
        -(-*self).floor()
    }

    /// Converts to `i64` if this rational is an integer that fits.
    pub fn to_i64(&self) -> Option<i64> {
        if self.den == 1 {
            i64::try_from(self.num).ok()
        } else {
            None
        }
    }

    /// Approximate `f64` value (for diagnostics only — never for decisions).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// The absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `self` is zero.
    pub fn recip(&self) -> Rational {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n)
    }
}

impl Add for Rational {
    type Output = Rational;
    // gcd pre-reduction intentionally uses division inside `add`.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn add(self, rhs: Rational) -> Rational {
        // a/b + c/d = (a*d + c*b) / (b*d); pre-reduce via gcd(b, d).
        let g = const_gcd(self.den, rhs.den);
        let lcm_part = rhs.den / g;
        let num = self
            .num
            .checked_mul(lcm_part)
            .and_then(|x| {
                x.checked_add(
                    rhs.num
                        .checked_mul(self.den / g)
                        .expect("rational overflow"),
                )
            })
            .expect("rational overflow");
        let den = self.den.checked_mul(lcm_part).expect("rational overflow");
        Rational::new(num, den)
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce before multiplying to keep magnitudes small.
        let g1 = const_gcd(self.num, rhs.den);
        let g2 = const_gcd(rhs.num, self.den);
        let num = (self.num / g1)
            .checked_mul(rhs.num / g2)
            .expect("rational overflow");
        let den = (self.den / g2)
            .checked_mul(rhs.den / g1)
            .expect("rational overflow");
        Rational::new(num, den)
    }
}

impl Div for Rational {
    type Output = Rational;
    // division *is* multiplication by the reciprocal.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0)
        let lhs = self.num.checked_mul(other.den).expect("rational overflow");
        let rhs = other.num.checked_mul(self.den).expect("rational overflow");
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, -7), Rational::ZERO);
        assert_eq!(r(6, 3).to_i64(), Some(2));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(1, 2), r(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 7) == Rational::ONE);
        assert!(Rational::from_int(-5) < Rational::ZERO);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), 3);
        assert_eq!(r(7, 2).ceil(), 4);
        assert_eq!(r(-7, 2).floor(), -4);
        assert_eq!(r(-7, 2).ceil(), -3);
        assert_eq!(r(6, 2).floor(), 3);
        assert_eq!(r(6, 2).ceil(), 3);
        assert_eq!(r(-6, 2).floor(), -3);
        assert_eq!(r(-6, 2).ceil(), -3);
        assert_eq!(Rational::ZERO.floor(), 0);
        assert_eq!(Rational::ZERO.ceil(), 0);
    }

    #[test]
    fn integer_checks() {
        assert!(r(4, 2).is_integer());
        assert!(!r(5, 2).is_integer());
        assert!(Rational::ZERO.is_zero());
        assert!(r(-1, 5).is_negative());
        assert!(r(1, 5).is_positive());
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", r(3, 6)), "1/2");
        assert_eq!(format!("{}", r(4, 2)), "2");
        assert_eq!(format!("{}", r(-3, 6)), "-1/2");
    }

    #[test]
    fn recip() {
        assert_eq!(r(2, 3).recip(), r(3, 2));
        assert_eq!(r(-2, 3).recip(), r(-3, 2));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_den_panics() {
        let _ = Rational::new(1, 0);
    }
}
