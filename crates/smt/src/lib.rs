//! # lejit-smt
//!
//! A from-scratch, dependency-free SMT solver for **quantifier-free linear
//! integer arithmetic (QF-LIA)**, built as the symbolic-reasoning substrate of
//! the LeJIT reproduction (HotNets '25). The paper uses Z3; this crate
//! implements the fragment LeJIT actually needs, with the exact interface the
//! decoding engine requires:
//!
//! * a term language (booleans + linear integer arithmetic) with hash-consing,
//! * incremental `push`/`pop` assertion frames with physical clause
//!   retraction: popping a frame deletes its clauses (and any learnt clause
//!   derived through them) from the SAT database, so long-running sessions
//!   never accumulate dead state,
//! * `check()` / `check_assuming()` satisfiability queries with models,
//! * `minimize(v)` / `maximize(v)` objective queries (binary search on
//!   satisfiability) used to compute feasible ranges for the next variable
//!   during constrained decoding.
//!
//! ## Architecture
//!
//! The solver follows the classic *lazy SMT* (DPLL(T)) design:
//!
//! 1. [`term`] — hash-consed term arena ([`TermPool`]). Equalities and
//!    disequalities are rewritten at construction into conjunctions /
//!    disjunctions of non-strict inequalities, so every theory atom is a
//!    single linear inequality `Σ cᵢ·xᵢ + k ≤ 0`.
//! 2. [`linear`] — normalization of integer terms into [`LinExpr`] and atoms
//!    into [`LinAtom`].
//! 3. [`cnf`] — Tseitin transformation of the boolean skeleton into CNF over
//!    SAT literals; theory atoms map 1:1 to SAT variables.
//! 4. [`sat`] — a CDCL SAT core: two-watched literals, first-UIP conflict
//!    analysis, VSIDS-style activities, Luby restarts, phase saving and
//!    MiniSat-style assumptions.
//! 5. [`simplex`] — an exact-rational general simplex with variable bounds
//!    (Dutertre–de Moura style) producing minimal *bound certificates* on
//!    infeasibility.
//! 6. [`theory`] — the LIA theory check: rational feasibility via simplex,
//!    then branch-and-bound on fractional integer variables. Infeasible
//!    conjunctions yield small cores that are learned as blocking clauses.
//! 7. [`solver`] — ties everything together behind [`Solver`].
//!
//! ## Example
//!
//! ```
//! use lejit_smt::{Solver, SatResult};
//!
//! let mut s = Solver::new();
//! // R1/R2 from the paper: 0 <= I_t <= 60, sum I_t == 100.
//! let vars: Vec<_> = (0..5).map(|t| s.int_var(&format!("i{t}"), 0, 60)).collect();
//! let terms: Vec<_> = vars.iter().map(|&v| s.var(v)).collect();
//! let total = s.add(&terms);
//! let hundred = s.int(100);
//! let sum_eq = s.eq(total, hundred);
//! s.assert(sum_eq);
//!
//! // Fix I_0..I_2 as the LLM generated them, then ask for I_3's range.
//! for (t, val) in [(0usize, 20i64), (1, 15), (2, 25)] {
//!     let c = s.int(val);
//!     let eq = s.eq(terms[t], c);
//!     s.assert(eq);
//! }
//! assert_eq!(s.check().unwrap(), SatResult::Sat);
//! assert_eq!(s.minimize(vars[3]).unwrap(), Some(0));
//! assert_eq!(s.maximize(vars[3]).unwrap(), Some(40)); // 100-60 = 40, not 60!
//! ```
//!
//! The last line is exactly the "solver looks ahead" behaviour of the paper:
//! naively `I_3` could be any value in `[0, 60]`, but then `I_4` could not
//! make the sum reach 100, so the feasible region is pruned to `[0, 40]`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cnf;
pub mod error;
pub mod linear;
pub mod rational;
pub mod sat;
pub mod simplex;
pub mod smtlib;
pub mod solver;
pub mod term;
pub mod theory;

pub use error::SolverError;
pub use linear::{LinAtom, LinExpr};
pub use rational::Rational;
pub use sat::{Lit, SatSolver, SatStats, SatVar, TheoryPropagator};
pub use smtlib::{run_script, ScriptOutput, SmtLibError};
pub use solver::{IntervalMap, Model, SatResult, Solver, SolverStats, VarBounds};
pub use term::{Sort, Term, TermId, TermPool, VarId, VarInfo};
pub use theory::{
    check_conjunction, TheoryConfig, TheoryPropagation, TheorySession, TheoryStats, TheoryVerdict,
};
