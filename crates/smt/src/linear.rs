//! Normalization of integer terms into linear expressions and of comparison
//! atoms into canonical linear inequalities.
//!
//! Every theory atom in the solver is a [`LinAtom`], meaning `expr ≤ 0`.
//! Because all variables are integers, the *negation* of an atom is again an
//! atom: `¬(e ≤ 0)  ⇔  e ≥ 1  ⇔  (−e + 1 ≤ 0)`.

use std::collections::BTreeMap;
use std::fmt;

use crate::term::{Term, TermId, TermPool, VarId};

/// A linear expression `Σ cᵢ·xᵢ + constant` with integer coefficients.
///
/// Coefficients are kept in a sorted map so expressions have a canonical
/// form; zero coefficients are never stored. `Ord` is derived (structural,
/// no semantics) so atoms can key deterministic ordered maps.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LinExpr {
    /// Non-zero coefficients per variable.
    pub coeffs: BTreeMap<VarId, i64>,
    /// The constant offset.
    pub constant: i64,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: i64) -> LinExpr {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: c,
        }
    }

    /// The expression `1·v`.
    pub fn var(v: VarId) -> LinExpr {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v, 1);
        LinExpr {
            coeffs,
            constant: 0,
        }
    }

    /// Whether the expression mentions no variables.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Adds `c · v` into the expression.
    pub fn add_term(&mut self, v: VarId, c: i64) {
        if c == 0 {
            return;
        }
        let entry = self.coeffs.entry(v).or_insert(0);
        *entry = entry.checked_add(c).expect("coefficient overflow");
        if *entry == 0 {
            self.coeffs.remove(&v);
        }
    }

    /// Adds another expression scaled by `k` into this one.
    pub fn add_scaled(&mut self, other: &LinExpr, k: i64) {
        if k == 0 {
            return;
        }
        for (&v, &c) in &other.coeffs {
            self.add_term(v, c.checked_mul(k).expect("coefficient overflow"));
        }
        self.constant = self
            .constant
            .checked_add(other.constant.checked_mul(k).expect("constant overflow"))
            .expect("constant overflow");
    }

    /// The negated expression.
    pub fn negated(&self) -> LinExpr {
        let mut out = LinExpr::zero();
        out.add_scaled(self, -1);
        out
    }

    /// Evaluates under a full assignment (variables absent from `assign`
    /// evaluate as 0).
    pub fn eval(&self, assign: &dyn Fn(VarId) -> i64) -> i64 {
        let mut acc = self.constant as i128;
        for (&v, &c) in &self.coeffs {
            acc += c as i128 * assign(v) as i128;
        }
        i64::try_from(acc).expect("evaluation overflow")
    }

    /// Lowers an integer term to a linear expression.
    ///
    /// # Panics
    /// Panics if the term is not integer-sorted (cannot happen for terms
    /// produced by [`TermPool`] builders used on integer arguments).
    pub fn from_term(pool: &TermPool, t: TermId) -> LinExpr {
        let mut out = LinExpr::zero();
        Self::accumulate(pool, t, 1, &mut out);
        out
    }

    fn accumulate(pool: &TermPool, t: TermId, k: i64, out: &mut LinExpr) {
        match pool.get(t) {
            Term::IntConst(n) => {
                out.constant = out
                    .constant
                    .checked_add(n.checked_mul(k).expect("constant overflow"))
                    .expect("constant overflow");
            }
            Term::Var(v) => out.add_term(*v, k),
            Term::Add(kids) => {
                for &kid in kids.iter() {
                    Self::accumulate(pool, kid, k, out);
                }
            }
            Term::MulConst(c, inner) => {
                let kc = k.checked_mul(*c).expect("coefficient overflow");
                Self::accumulate(pool, *inner, kc, out);
            }
            other => panic!("non-integer term in linear context: {other:?}"),
        }
    }

    /// Renders the expression for diagnostics, naming variables via the pool.
    pub fn display(&self, pool: &TermPool) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (&v, &c) in &self.coeffs {
            let name = &pool.var_info(v).name;
            parts.push(if c == 1 {
                name.clone()
            } else {
                format!("{c}*{name}")
            });
        }
        if self.constant != 0 || parts.is_empty() {
            parts.push(self.constant.to_string());
        }
        parts.join(" + ")
    }
}

impl fmt::Debug for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.coeffs {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{c}*{v:?}")?;
            first = false;
        }
        if self.constant != 0 || first {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{}", self.constant)?;
        }
        Ok(())
    }
}

/// A canonical theory atom: `expr ≤ 0`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinAtom {
    /// The left-hand side of `expr ≤ 0`.
    pub expr: LinExpr,
}

impl LinAtom {
    /// Builds the atom for the term-level comparison `lhs ≤ rhs`.
    pub fn from_le(pool: &TermPool, lhs: TermId, rhs: TermId) -> LinAtom {
        let mut expr = LinExpr::from_term(pool, lhs);
        let r = LinExpr::from_term(pool, rhs);
        expr.add_scaled(&r, -1);
        LinAtom { expr }
    }

    /// The integer negation of this atom: `¬(e ≤ 0) ⇔ (−e + 1 ≤ 0)`.
    pub fn negated(&self) -> LinAtom {
        let mut expr = self.expr.negated();
        expr.constant = expr.constant.checked_add(1).expect("constant overflow");
        LinAtom { expr }
    }

    /// Evaluates the atom under a concrete assignment.
    pub fn holds(&self, assign: &dyn Fn(VarId) -> i64) -> bool {
        self.expr.eval(assign) <= 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_term_linearizes() {
        let mut p = TermPool::new();
        let vx = p.int_var("x", 0, 100);
        let vy = p.int_var("y", 0, 100);
        let (x, y) = (p.var(vx), p.var(vy));
        // 2x + 3y - 4 + x  =>  3x + 3y - 4
        let two_x = p.mul_const(2, x);
        let three_y = p.mul_const(3, y);
        let c = p.int(-4);
        let t = p.add(&[two_x, three_y, c, x]);
        let e = LinExpr::from_term(&p, t);
        assert_eq!(e.coeffs.get(&vx), Some(&3));
        assert_eq!(e.coeffs.get(&vy), Some(&3));
        assert_eq!(e.constant, -4);
    }

    #[test]
    fn cancellation_removes_zero_coeffs() {
        let mut p = TermPool::new();
        let vx = p.int_var("x", 0, 100);
        let x = p.var(vx);
        let nx = p.mul_const(-1, x);
        let t = p.add(&[x, nx]);
        let e = LinExpr::from_term(&p, t);
        assert!(e.is_constant());
        assert_eq!(e.constant, 0);
    }

    #[test]
    fn atom_negation_roundtrip() {
        let mut p = TermPool::new();
        let vx = p.int_var("x", 0, 100);
        let x = p.var(vx);
        let c = p.int(5);
        // x <= 5  =>  x - 5 <= 0 ; negation =>  -x + 6 <= 0  (x >= 6)
        let a = LinAtom::from_le(&p, x, c);
        assert_eq!(a.expr.coeffs.get(&vx), Some(&1));
        assert_eq!(a.expr.constant, -5);
        let n = a.negated();
        assert_eq!(n.expr.coeffs.get(&vx), Some(&-1));
        assert_eq!(n.expr.constant, 6);
        // Double negation is identity.
        assert_eq!(n.negated(), a);
    }

    #[test]
    fn atom_evaluation() {
        let mut p = TermPool::new();
        let vx = p.int_var("x", 0, 100);
        let x = p.var(vx);
        let c = p.int(5);
        let a = LinAtom::from_le(&p, x, c);
        assert!(a.holds(&|_| 5));
        assert!(a.holds(&|_| 0));
        assert!(!a.holds(&|_| 6));
        let n = a.negated();
        assert!(!n.holds(&|_| 5));
        assert!(n.holds(&|_| 6));
    }

    #[test]
    fn eval_mixed() {
        let mut p = TermPool::new();
        let vx = p.int_var("x", 0, 100);
        let vy = p.int_var("y", 0, 100);
        let (x, y) = (p.var(vx), p.var(vy));
        let tx = p.mul_const(2, x);
        let ty = p.mul_const(-3, y);
        let c = p.int(7);
        let t = p.add(&[tx, ty, c]);
        let e = LinExpr::from_term(&p, t);
        let val = e.eval(&|v| if v == vx { 10 } else { 3 });
        assert_eq!(val, 2 * 10 - 3 * 3 + 7);
    }

    #[test]
    fn display_names_variables() {
        let mut p = TermPool::new();
        let vx = p.int_var("ingress", 0, 100);
        let x = p.var(vx);
        let c = p.int(60);
        let a = LinAtom::from_le(&p, x, c);
        assert_eq!(a.expr.display(&p), "ingress + -60");
    }
}
