//! Tseitin transformation of the boolean skeleton into CNF.
//!
//! Every boolean subterm gets a SAT literal, cached by [`TermId`] — the
//! *variable* mapping is permanent, so re-encoding a term is free. The
//! *definitional clauses*, however, are scoped to the assertion frame that
//! (re-)introduced them: each is guarded by that frame's selector literal,
//! so retracting the frame physically deletes them and the SAT search stops
//! paying for encodings nothing live references (a long-lived session would
//! otherwise decide every variable it ever allocated, every solve, forever).
//! On a cache hit whose defining frame has since been retracted, the clauses
//! are re-emitted under the current frame — same variables, fresh guard.
//!
//! Theory atoms (`Le` terms) are canonicalized into [`LinAtom`]s first and
//! cached *by atom*, so syntactic variants of the same inequality (`x ≤ 5`
//! vs `x + 1 ≤ 6`) share one SAT variable — which both shrinks the search
//! space and lets the theory layer keep a single registry.

use std::collections::BTreeMap;

use crate::linear::LinAtom;
use crate::sat::{Lit, SatSolver, SatVar};
use crate::term::{Term, TermId, TermPool, VarId};

/// Incremental Tseitin encoder shared by all assertions of a [`crate::Solver`].
///
/// All caches are `BTreeMap`s: the encoder sits on the decode path, where
/// map iteration order must be deterministic (`L1-hash-collection` lint).
#[derive(Default)]
pub struct Encoder {
    /// Cache of already-encoded boolean terms.
    cache: BTreeMap<TermId, Lit>,
    /// SAT variable and registry index per canonical theory atom.
    atom_vars: BTreeMap<LinAtom, (SatVar, u32)>,
    /// Registry: every theory atom with its SAT variable, in allocation order.
    atoms: Vec<(LinAtom, SatVar)>,
    /// Scope of each `And`/`Or` term's definitional clauses: `None` means
    /// permanent (emitted at the root, outside any frame); `Some(id)` means
    /// guarded by the frame with that *generation id* — live exactly while
    /// that frame is open, deleted by the frame's retract. Generation ids
    /// (not selector variables) are the key because selector variables are
    /// recycled: a reused selector must not make a retired frame's deleted
    /// clauses look live. Leaf terms (`Var`, `Le`, constants) and `Not`
    /// have no definitional clauses and no entry.
    def_guard: BTreeMap<TermId, Option<u64>>,
    /// Cache of each encoded term's *atom cone*: the registry indices of
    /// every theory atom reachable in its encoding, sorted and deduplicated.
    /// The SMT layer refcounts these per assertion frame so a theory check
    /// only receives atoms belonging to live assertions — definitional
    /// clauses are permanent (that is what makes `cache` sound across
    /// frames), so without the cone bookkeeping every atom ever encoded
    /// would stay decidable forever and per-check theory cost would grow
    /// with session history.
    cones: BTreeMap<TermId, Vec<u32>>,
    /// SAT variable per boolean problem variable.
    bool_vars: BTreeMap<VarId, SatVar>,
    /// Literal that is constant-true (allocated lazily).
    true_lit: Option<Lit>,
    /// Encode calls answered from the term cache (no clauses emitted).
    cache_hits: u64,
    /// Encode calls that had to Tseitin-encode a new term.
    cache_misses: u64,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// The theory-atom registry: `(atom, sat_var)` pairs.
    pub fn atoms(&self) -> &[(LinAtom, SatVar)] {
        &self.atoms
    }

    /// The SAT variable for a boolean problem variable, if encoded.
    pub fn bool_var(&self, v: VarId) -> Option<SatVar> {
        self.bool_vars.get(&v).copied()
    }

    /// Tseitin encode-cache work as `(hits, misses)`: hits returned the
    /// cached literal for a term, misses paid for a fresh encoding (new SAT
    /// variables and definitional clauses). Recursive first-time encodings
    /// count one miss per subterm.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache_hits, self.cache_misses)
    }

    fn true_lit(&mut self, sat: &mut SatSolver) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let v = sat.new_var();
        let l = Lit::new(v, true);
        sat.add_clause(&[l]);
        self.true_lit = Some(l);
        l
    }

    /// Encodes a boolean term, returning its literal.
    ///
    /// `guard` is the current frame's selector literal plus its generation
    /// id (or `None` at the root): every definitional clause emitted is
    /// prefixed with `¬selector`, scoping it to the frame. `open` is the
    /// stack of open frames' generation ids (ascending — generation ids are
    /// allocated monotonically and never reused, unlike selector
    /// *variables*, which are recycled), used to decide whether a cached
    /// term's definitional clauses are still live; if their defining frame
    /// was retracted they are re-emitted under `guard`, reusing the cached
    /// variables.
    pub fn encode(
        &mut self,
        pool: &TermPool,
        sat: &mut SatSolver,
        t: TermId,
        guard: Option<(Lit, u64)>,
        open: &[u64],
    ) -> Lit {
        if let Some(&l) = self.cache.get(&t) {
            self.cache_hits += 1;
            self.ensure_defs(pool, sat, t, guard, open);
            return l;
        }
        self.cache_misses += 1;
        let lit = match pool.get(t) {
            Term::True => self.true_lit(sat),
            Term::False => !self.true_lit(sat),
            Term::Not(inner) => {
                let inner = *inner;
                !self.encode(pool, sat, inner, guard, open)
            }
            Term::Var(v) => {
                let sv = *self.bool_vars.entry(*v).or_insert_with(|| sat.new_var());
                Lit::new(sv, true)
            }
            Term::Le(a, b) => {
                let atom = LinAtom::from_le(pool, *a, *b);
                // Constant atoms should have been folded by the pool, but a
                // cancellation (x - x <= -1) can still reach here.
                if atom.expr.is_constant() {
                    let l = self.true_lit(sat);
                    if atom.expr.constant <= 0 {
                        l
                    } else {
                        !l
                    }
                } else {
                    let sv = match self.atom_vars.get(&atom) {
                        Some(&(sv, _)) => sv,
                        None => {
                            let sv = sat.new_var();
                            let idx = self.atoms.len() as u32;
                            self.atom_vars.insert(atom.clone(), (sv, idx));
                            self.atoms.push((atom, sv));
                            sv
                        }
                    };
                    Lit::new(sv, true)
                }
            }
            Term::And(kids) => {
                let kids: Vec<TermId> = kids.to_vec();
                let lits: Vec<Lit> = kids
                    .iter()
                    .map(|&k| self.encode(pool, sat, k, guard, open))
                    .collect();
                let v = sat.new_var();
                let lv = Lit::new(v, true);
                Self::emit_and_defs(sat, lv, &lits, guard.map(|(g, _)| g));
                self.def_guard.insert(t, guard.map(|(_, id)| id));
                lv
            }
            Term::Or(kids) => {
                let kids: Vec<TermId> = kids.to_vec();
                let lits: Vec<Lit> = kids
                    .iter()
                    .map(|&k| self.encode(pool, sat, k, guard, open))
                    .collect();
                let v = sat.new_var();
                let lv = Lit::new(v, true);
                Self::emit_or_defs(sat, lv, &lits, guard.map(|(g, _)| g));
                self.def_guard.insert(t, guard.map(|(_, id)| id));
                lv
            }
            other => panic!("cannot encode non-boolean term {other:?}"),
        };
        self.cache.insert(t, lit);
        lit
    }

    /// Whether `t`'s definitional clauses are currently attached: permanent,
    /// or guarded by a frame generation id still on the open-frame stack.
    fn defs_live(&self, t: TermId, open: &[u64]) -> bool {
        match self.def_guard.get(&t) {
            None => false,
            Some(None) => true,
            Some(Some(id)) => open.binary_search(id).is_ok(),
        }
    }

    /// Re-attaches the definitional clauses of every dead `And`/`Or` node in
    /// `t`'s (already-encoded) subtree, guarded by the current frame.
    ///
    /// Recursion stops at live nodes: a node's defs being live implies its
    /// children's are too, because children are made live whenever a parent
    /// is (re-)emitted and frames retract in LIFO order — a child's guard
    /// frame, opened no later than the parent's, can only close after it.
    fn ensure_defs(
        &mut self,
        pool: &TermPool,
        sat: &mut SatSolver,
        t: TermId,
        guard: Option<(Lit, u64)>,
        open: &[u64],
    ) {
        match pool.get(t) {
            Term::True | Term::False | Term::Var(_) | Term::Le(..) => {}
            Term::Not(inner) => {
                let inner = *inner;
                self.ensure_defs(pool, sat, inner, guard, open);
            }
            Term::And(kids) | Term::Or(kids) => {
                if self.defs_live(t, open) {
                    return;
                }
                let is_and = matches!(pool.get(t), Term::And(_));
                let kids: Vec<TermId> = kids.to_vec();
                for &k in &kids {
                    self.ensure_defs(pool, sat, k, guard, open);
                }
                let lv = self.cache[&t];
                let lits: Vec<Lit> = kids.iter().map(|&k| self.cache[&k]).collect();
                if is_and {
                    Self::emit_and_defs(sat, lv, &lits, guard.map(|(g, _)| g));
                } else {
                    Self::emit_or_defs(sat, lv, &lits, guard.map(|(g, _)| g));
                }
                self.def_guard.insert(t, guard.map(|(_, id)| id));
            }
            _ => {}
        }
    }

    /// `v → kᵢ` for all i; `(k₁ ∧ … ∧ kₙ) → v` — each clause prefixed with
    /// `¬guard` when a frame is open.
    fn emit_and_defs(sat: &mut SatSolver, lv: Lit, lits: &[Lit], guard: Option<Lit>) {
        let g = guard.map(|s| !s);
        let mut long: Vec<Lit> = Vec::with_capacity(lits.len() + 2);
        if let Some(g) = g {
            long.push(g);
        }
        long.push(lv);
        for &k in lits {
            match g {
                Some(g) => sat.add_clause(&[g, !lv, k]),
                None => sat.add_clause(&[!lv, k]),
            };
            long.push(!k);
        }
        sat.add_clause(&long);
    }

    /// `kᵢ → v` for all i; `v → (k₁ ∨ … ∨ kₙ)` — each clause prefixed with
    /// `¬guard` when a frame is open.
    fn emit_or_defs(sat: &mut SatSolver, lv: Lit, lits: &[Lit], guard: Option<Lit>) {
        let g = guard.map(|s| !s);
        let mut long: Vec<Lit> = Vec::with_capacity(lits.len() + 2);
        if let Some(g) = g {
            long.push(g);
        }
        long.push(!lv);
        for &k in lits {
            match g {
                Some(g) => sat.add_clause(&[g, lv, !k]),
                None => sat.add_clause(&[lv, !k]),
            };
            long.push(k);
        }
        sat.add_clause(&long);
    }

    /// The *atom cone* of an already-encoded term: registry indices of every
    /// theory atom reachable in its encoding, sorted ascending, deduplicated.
    ///
    /// Must be called after [`Self::encode`] for the same term (the cone is
    /// read off the atom registry, which `encode` populates); the result is
    /// cached per [`TermId`]. [`crate::Solver::assert`] refcounts these
    /// indices per frame so theory checks only see live assertions' atoms.
    pub fn cone(&mut self, pool: &TermPool, t: TermId) -> &[u32] {
        self.ensure_cone(pool, t);
        &self.cones[&t]
    }

    /// Memoized cone computation: every subterm's cone is cached, so shared
    /// (hash-consed) subterms are visited once, not once per occurrence.
    fn ensure_cone(&mut self, pool: &TermPool, t: TermId) {
        if self.cones.contains_key(&t) {
            return;
        }
        let mut acc: Vec<u32> = Vec::new();
        match pool.get(t) {
            Term::True | Term::False | Term::Var(_) => {}
            Term::Not(inner) => {
                let inner = *inner;
                self.ensure_cone(pool, inner);
                acc.extend_from_slice(&self.cones[&inner]);
            }
            Term::Le(a, b) => {
                let atom = LinAtom::from_le(pool, *a, *b);
                // Constant atoms fold to truth literals in `encode` and
                // never reach the registry.
                if !atom.expr.is_constant() {
                    if let Some(&(_, idx)) = self.atom_vars.get(&atom) {
                        acc.push(idx);
                    }
                }
            }
            Term::And(kids) | Term::Or(kids) => {
                for k in kids.iter().copied() {
                    self.ensure_cone(pool, k);
                    acc.extend_from_slice(&self.cones[&k]);
                }
            }
            _ => {}
        }
        acc.sort_unstable();
        acc.dedup();
        self.cones.insert(t, acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatOutcome;

    fn setup() -> (TermPool, SatSolver, Encoder) {
        (TermPool::new(), SatSolver::new(), Encoder::new())
    }

    #[test]
    fn atoms_are_shared_across_syntactic_variants() {
        let (mut p, mut sat, mut enc) = setup();
        let v = p.int_var("x", 0, 10);
        let x = p.var(v);
        let five = p.int(5);
        let six = p.int(6);
        let one = p.int(1);
        let a1 = p.le(x, five);
        let x1 = p.add(&[x, one]);
        let a2 = p.le(x1, six);
        let l1 = enc.encode(&p, &mut sat, a1, None, &[]);
        let l2 = enc.encode(&p, &mut sat, a2, None, &[]);
        assert_eq!(l1, l2, "x<=5 and x+1<=6 must share a SAT variable");
        assert_eq!(enc.atoms().len(), 1);
    }

    #[test]
    fn and_encoding_is_equisatisfiable() {
        let (mut p, mut sat, mut enc) = setup();
        let a = p.bool_var("a");
        let b = p.bool_var("b");
        let (ta, tb) = (p.var(a), p.var(b));
        let conj = p.and(&[ta, tb]);
        let root = enc.encode(&p, &mut sat, conj, None, &[]);
        sat.add_clause(&[root]);
        assert_eq!(sat.solve(&[]).unwrap(), SatOutcome::Sat);
        let sa = enc.bool_var(a).unwrap();
        let sb = enc.bool_var(b).unwrap();
        assert!(sat.model_value(sa));
        assert!(sat.model_value(sb));
    }

    #[test]
    fn or_encoding_requires_some_disjunct() {
        let (mut p, mut sat, mut enc) = setup();
        let a = p.bool_var("a");
        let b = p.bool_var("b");
        let (ta, tb) = (p.var(a), p.var(b));
        let disj = p.or(&[ta, tb]);
        let root = enc.encode(&p, &mut sat, disj, None, &[]);
        sat.add_clause(&[root]);
        let sa = enc.bool_var(a).unwrap();
        let sb = enc.bool_var(b).unwrap();
        // Force both false → unsat.
        sat.add_clause(&[Lit::new(sa, false)]);
        sat.add_clause(&[Lit::new(sb, false)]);
        assert_eq!(sat.solve(&[]).unwrap(), SatOutcome::Unsat);
    }

    #[test]
    fn constant_atoms_fold_to_truth_literals() {
        let (mut p, mut sat, mut enc) = setup();
        // x - x <= -1 is an always-false atom that survives pool folding
        // only as a Le over a constant expression: build it manually.
        let v = p.int_var("x", 0, 10);
        let x = p.var(v);
        let negx = p.mul_const(-1, x);
        let diff = p.add(&[x, negx]); // folds to 0
        let minus1 = p.int(-1);
        let t = p.le(diff, minus1); // 0 <= -1 folds at pool level to False
        let l = enc.encode(&p, &mut sat, t, None, &[]);
        sat.add_clause(&[l]);
        assert_eq!(sat.solve(&[]).unwrap(), SatOutcome::Unsat);
    }

    #[test]
    fn true_false_terms() {
        let (mut p, mut sat, mut enc) = setup();
        let t = p.tt();
        let f = p.ff();
        let lt = enc.encode(&p, &mut sat, t, None, &[]);
        let lf = enc.encode(&p, &mut sat, f, None, &[]);
        assert_eq!(lt, !lf);
        sat.add_clause(&[lt]);
        assert_eq!(sat.solve(&[]).unwrap(), SatOutcome::Sat);
    }

    #[test]
    fn encoding_is_cached() {
        let (mut p, mut sat, mut enc) = setup();
        let a = p.bool_var("a");
        let b = p.bool_var("b");
        let (ta, tb) = (p.var(a), p.var(b));
        let conj = p.and(&[ta, tb]);
        let l1 = enc.encode(&p, &mut sat, conj, None, &[]);
        let vars_before = sat.num_vars();
        let l2 = enc.encode(&p, &mut sat, conj, None, &[]);
        assert_eq!(l1, l2);
        assert_eq!(sat.num_vars(), vars_before);
    }
}
