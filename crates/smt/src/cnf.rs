//! Tseitin transformation of the boolean skeleton into CNF.
//!
//! Every boolean subterm gets a SAT literal; definitional clauses are added
//! once (the encoder caches by [`TermId`]). Theory atoms (`Le` terms) are
//! canonicalized into [`LinAtom`]s first and cached *by atom*, so syntactic
//! variants of the same inequality (`x ≤ 5` vs `x + 1 ≤ 6`) share one SAT
//! variable — which both shrinks the search space and lets the theory layer
//! keep a single registry.

use std::collections::BTreeMap;

use crate::linear::LinAtom;
use crate::sat::{Lit, SatSolver, SatVar};
use crate::term::{Term, TermId, TermPool, VarId};

/// Incremental Tseitin encoder shared by all assertions of a [`crate::Solver`].
///
/// All caches are `BTreeMap`s: the encoder sits on the decode path, where
/// map iteration order must be deterministic (`L1-hash-collection` lint).
#[derive(Default)]
pub struct Encoder {
    /// Cache of already-encoded boolean terms.
    cache: BTreeMap<TermId, Lit>,
    /// SAT variable per canonical theory atom.
    atom_vars: BTreeMap<LinAtom, SatVar>,
    /// Registry: every theory atom with its SAT variable, in allocation order.
    atoms: Vec<(LinAtom, SatVar)>,
    /// SAT variable per boolean problem variable.
    bool_vars: BTreeMap<VarId, SatVar>,
    /// Literal that is constant-true (allocated lazily).
    true_lit: Option<Lit>,
    /// Encode calls answered from the term cache (no clauses emitted).
    cache_hits: u64,
    /// Encode calls that had to Tseitin-encode a new term.
    cache_misses: u64,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// The theory-atom registry: `(atom, sat_var)` pairs.
    pub fn atoms(&self) -> &[(LinAtom, SatVar)] {
        &self.atoms
    }

    /// The SAT variable for a boolean problem variable, if encoded.
    pub fn bool_var(&self, v: VarId) -> Option<SatVar> {
        self.bool_vars.get(&v).copied()
    }

    /// Tseitin encode-cache work as `(hits, misses)`: hits returned the
    /// cached literal for a term, misses paid for a fresh encoding (new SAT
    /// variables and definitional clauses). Recursive first-time encodings
    /// count one miss per subterm.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache_hits, self.cache_misses)
    }

    fn true_lit(&mut self, sat: &mut SatSolver) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let v = sat.new_var();
        let l = Lit::new(v, true);
        sat.add_clause(&[l]);
        self.true_lit = Some(l);
        l
    }

    /// Encodes a boolean term, returning its literal. Definitional clauses
    /// are added to `sat` as needed (idempotently).
    pub fn encode(&mut self, pool: &TermPool, sat: &mut SatSolver, t: TermId) -> Lit {
        if let Some(&l) = self.cache.get(&t) {
            self.cache_hits += 1;
            return l;
        }
        self.cache_misses += 1;
        let lit = match pool.get(t) {
            Term::True => self.true_lit(sat),
            Term::False => !self.true_lit(sat),
            Term::Not(inner) => !self.encode(pool, sat, *inner),
            Term::Var(v) => {
                let sv = *self.bool_vars.entry(*v).or_insert_with(|| sat.new_var());
                Lit::new(sv, true)
            }
            Term::Le(a, b) => {
                let atom = LinAtom::from_le(pool, *a, *b);
                // Constant atoms should have been folded by the pool, but a
                // cancellation (x - x <= -1) can still reach here.
                if atom.expr.is_constant() {
                    let l = self.true_lit(sat);
                    if atom.expr.constant <= 0 {
                        l
                    } else {
                        !l
                    }
                } else {
                    let sv = match self.atom_vars.get(&atom) {
                        Some(&sv) => sv,
                        None => {
                            let sv = sat.new_var();
                            self.atom_vars.insert(atom.clone(), sv);
                            self.atoms.push((atom, sv));
                            sv
                        }
                    };
                    Lit::new(sv, true)
                }
            }
            Term::And(kids) => {
                let kids: Vec<TermId> = kids.to_vec();
                let lits: Vec<Lit> = kids.iter().map(|&k| self.encode(pool, sat, k)).collect();
                let v = sat.new_var();
                let lv = Lit::new(v, true);
                // v → kᵢ for all i;  (k₁ ∧ … ∧ kₙ) → v.
                let mut long: Vec<Lit> = Vec::with_capacity(lits.len() + 1);
                long.push(lv);
                for &k in &lits {
                    sat.add_clause(&[!lv, k]);
                    long.push(!k);
                }
                sat.add_clause(&long);
                lv
            }
            Term::Or(kids) => {
                let kids: Vec<TermId> = kids.to_vec();
                let lits: Vec<Lit> = kids.iter().map(|&k| self.encode(pool, sat, k)).collect();
                let v = sat.new_var();
                let lv = Lit::new(v, true);
                // kᵢ → v for all i;  v → (k₁ ∨ … ∨ kₙ).
                let mut long: Vec<Lit> = Vec::with_capacity(lits.len() + 1);
                long.push(!lv);
                for &k in &lits {
                    sat.add_clause(&[lv, !k]);
                    long.push(k);
                }
                sat.add_clause(&long);
                lv
            }
            other => panic!("cannot encode non-boolean term {other:?}"),
        };
        self.cache.insert(t, lit);
        lit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SatOutcome;

    fn setup() -> (TermPool, SatSolver, Encoder) {
        (TermPool::new(), SatSolver::new(), Encoder::new())
    }

    #[test]
    fn atoms_are_shared_across_syntactic_variants() {
        let (mut p, mut sat, mut enc) = setup();
        let v = p.int_var("x", 0, 10);
        let x = p.var(v);
        let five = p.int(5);
        let six = p.int(6);
        let one = p.int(1);
        let a1 = p.le(x, five);
        let x1 = p.add(&[x, one]);
        let a2 = p.le(x1, six);
        let l1 = enc.encode(&p, &mut sat, a1);
        let l2 = enc.encode(&p, &mut sat, a2);
        assert_eq!(l1, l2, "x<=5 and x+1<=6 must share a SAT variable");
        assert_eq!(enc.atoms().len(), 1);
    }

    #[test]
    fn and_encoding_is_equisatisfiable() {
        let (mut p, mut sat, mut enc) = setup();
        let a = p.bool_var("a");
        let b = p.bool_var("b");
        let (ta, tb) = (p.var(a), p.var(b));
        let conj = p.and(&[ta, tb]);
        let root = enc.encode(&p, &mut sat, conj);
        sat.add_clause(&[root]);
        assert_eq!(sat.solve(&[]).unwrap(), SatOutcome::Sat);
        let sa = enc.bool_var(a).unwrap();
        let sb = enc.bool_var(b).unwrap();
        assert!(sat.model_value(sa));
        assert!(sat.model_value(sb));
    }

    #[test]
    fn or_encoding_requires_some_disjunct() {
        let (mut p, mut sat, mut enc) = setup();
        let a = p.bool_var("a");
        let b = p.bool_var("b");
        let (ta, tb) = (p.var(a), p.var(b));
        let disj = p.or(&[ta, tb]);
        let root = enc.encode(&p, &mut sat, disj);
        sat.add_clause(&[root]);
        let sa = enc.bool_var(a).unwrap();
        let sb = enc.bool_var(b).unwrap();
        // Force both false → unsat.
        sat.add_clause(&[Lit::new(sa, false)]);
        sat.add_clause(&[Lit::new(sb, false)]);
        assert_eq!(sat.solve(&[]).unwrap(), SatOutcome::Unsat);
    }

    #[test]
    fn constant_atoms_fold_to_truth_literals() {
        let (mut p, mut sat, mut enc) = setup();
        // x - x <= -1 is an always-false atom that survives pool folding
        // only as a Le over a constant expression: build it manually.
        let v = p.int_var("x", 0, 10);
        let x = p.var(v);
        let negx = p.mul_const(-1, x);
        let diff = p.add(&[x, negx]); // folds to 0
        let minus1 = p.int(-1);
        let t = p.le(diff, minus1); // 0 <= -1 folds at pool level to False
        let l = enc.encode(&p, &mut sat, t);
        sat.add_clause(&[l]);
        assert_eq!(sat.solve(&[]).unwrap(), SatOutcome::Unsat);
    }

    #[test]
    fn true_false_terms() {
        let (mut p, mut sat, mut enc) = setup();
        let t = p.tt();
        let f = p.ff();
        let lt = enc.encode(&p, &mut sat, t);
        let lf = enc.encode(&p, &mut sat, f);
        assert_eq!(lt, !lf);
        sat.add_clause(&[lt]);
        assert_eq!(sat.solve(&[]).unwrap(), SatOutcome::Sat);
    }

    #[test]
    fn encoding_is_cached() {
        let (mut p, mut sat, mut enc) = setup();
        let a = p.bool_var("a");
        let b = p.bool_var("b");
        let (ta, tb) = (p.var(a), p.var(b));
        let conj = p.and(&[ta, tb]);
        let l1 = enc.encode(&p, &mut sat, conj);
        let vars_before = sat.num_vars();
        let l2 = enc.encode(&p, &mut sat, conj);
        assert_eq!(l1, l2);
        assert_eq!(sat.num_vars(), vars_before);
    }
}
