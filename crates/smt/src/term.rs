//! Hash-consed term arena for QF-LIA formulas.
//!
//! Terms are immutable and deduplicated: building the same term twice yields
//! the same [`TermId`]. Construction performs light normalization so that the
//! rest of the solver only ever sees *one* comparison kind:
//!
//! * `lt/gt/ge/eq/ne` are rewritten into `Le` atoms (using integer semantics,
//!   e.g. `a < b  ⇒  a + 1 ≤ b`),
//! * `implies`/`iff` are rewritten into `And`/`Or`/`Not`,
//! * double negation is collapsed, `And`/`Or` are flattened and deduplicated,
//!   and comparisons between constants are folded to `True`/`False`.

use std::collections::BTreeMap;
use std::fmt;

/// Index of a term in a [`TermPool`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub(crate) u32);

impl fmt::Debug for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Index of a declared variable in a [`TermPool`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The raw index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The sort (type) of a term or variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sort {
    /// Boolean sort.
    Bool,
    /// Integer sort.
    Int,
}

/// Metadata about a declared variable.
#[derive(Clone, Debug)]
pub struct VarInfo {
    /// Human-readable name (used in models and diagnostics).
    pub name: String,
    /// The variable's sort.
    pub sort: Sort,
    /// Inclusive lower bound (integer variables only; ignored for booleans).
    pub lo: i64,
    /// Inclusive upper bound (integer variables only; ignored for booleans).
    pub hi: i64,
}

/// A term node. Obtain instances through [`TermPool`] builder methods; the
/// invariants documented on each variant are maintained by construction.
///
/// `Ord` is derived so terms can key ordered (deterministic-iteration)
/// maps; the ordering itself is structural and carries no semantics.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Term {
    /// The boolean constant `true`.
    True,
    /// The boolean constant `false`.
    False,
    /// Boolean negation. Never wraps another `Not`, `True` or `False`.
    Not(TermId),
    /// N-ary conjunction; flattened, deduplicated, at least two conjuncts.
    And(Box<[TermId]>),
    /// N-ary disjunction; flattened, deduplicated, at least two disjuncts.
    Or(Box<[TermId]>),
    /// An integer constant.
    IntConst(i64),
    /// A declared variable (boolean or integer).
    Var(VarId),
    /// N-ary integer sum; at least two addends.
    Add(Box<[TermId]>),
    /// Multiplication of an integer term by a non-zero, non-one constant.
    MulConst(i64, TermId),
    /// The sole comparison atom: `lhs ≤ rhs` over integer terms.
    Le(TermId, TermId),
}

/// Arena of hash-consed terms plus the variable symbol table.
///
/// Both lookup tables are `BTreeMap`s: the pool is part of the decode
/// path, where iteration order must be deterministic (enforced by the
/// `L1-hash-collection` lint in `lejit-analyze`).
#[derive(Default)]
pub struct TermPool {
    terms: Vec<Term>,
    dedup: BTreeMap<Term, TermId>,
    vars: Vec<VarInfo>,
    var_names: BTreeMap<String, VarId>,
}

impl TermPool {
    /// Creates an empty pool.
    pub fn new() -> TermPool {
        TermPool::default()
    }

    /// Number of terms interned so far.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// All declared variables.
    pub fn vars(&self) -> &[VarInfo] {
        &self.vars
    }

    /// Metadata for a variable.
    pub fn var_info(&self, v: VarId) -> &VarInfo {
        &self.vars[v.0 as usize]
    }

    /// Looks up a variable by name.
    pub fn find_var(&self, name: &str) -> Option<VarId> {
        self.var_names.get(name).copied()
    }

    /// Returns the term node for an id.
    pub fn get(&self, id: TermId) -> &Term {
        &self.terms[id.0 as usize]
    }

    fn intern(&mut self, t: Term) -> TermId {
        if let Some(&id) = self.dedup.get(&t) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(t.clone());
        self.dedup.insert(t, id);
        id
    }

    // ------------------------------------------------------------------
    // Variable declarations
    // ------------------------------------------------------------------

    /// Declares a bounded integer variable. Re-declaring the same name
    /// returns the existing variable (bounds must then match).
    ///
    /// # Panics
    /// Panics if `lo > hi`, or if the name is already declared with a
    /// different sort or different bounds.
    pub fn int_var(&mut self, name: &str, lo: i64, hi: i64) -> VarId {
        assert!(lo <= hi, "int_var `{name}`: lo {lo} > hi {hi}");
        if let Some(&v) = self.var_names.get(name) {
            let info = &self.vars[v.0 as usize];
            assert!(
                info.sort == Sort::Int && info.lo == lo && info.hi == hi,
                "variable `{name}` re-declared with different sort or bounds"
            );
            return v;
        }
        let v = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: name.to_string(),
            sort: Sort::Int,
            lo,
            hi,
        });
        self.var_names.insert(name.to_string(), v);
        v
    }

    /// Declares a boolean variable (idempotent per name).
    ///
    /// # Panics
    /// Panics if the name is already declared as an integer.
    pub fn bool_var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.var_names.get(name) {
            assert!(
                self.vars[v.0 as usize].sort == Sort::Bool,
                "variable `{name}` re-declared with different sort"
            );
            return v;
        }
        let v = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: name.to_string(),
            sort: Sort::Bool,
            lo: 0,
            hi: 1,
        });
        self.var_names.insert(name.to_string(), v);
        v
    }

    // ------------------------------------------------------------------
    // Leaf builders
    // ------------------------------------------------------------------

    /// The constant `true`.
    pub fn tt(&mut self) -> TermId {
        self.intern(Term::True)
    }

    /// The constant `false`.
    pub fn ff(&mut self) -> TermId {
        self.intern(Term::False)
    }

    /// An integer constant.
    pub fn int(&mut self, n: i64) -> TermId {
        self.intern(Term::IntConst(n))
    }

    /// A variable reference term.
    pub fn var(&mut self, v: VarId) -> TermId {
        self.intern(Term::Var(v))
    }

    /// The sort of a term.
    pub fn sort_of(&self, t: TermId) -> Sort {
        match self.get(t) {
            Term::True | Term::False | Term::Not(_) | Term::And(_) | Term::Or(_) | Term::Le(..) => {
                Sort::Bool
            }
            Term::IntConst(_) | Term::Add(_) | Term::MulConst(..) => Sort::Int,
            Term::Var(v) => self.vars[v.0 as usize].sort,
        }
    }

    /// The constant value of a term, if it is an integer constant.
    pub fn as_int_const(&self, t: TermId) -> Option<i64> {
        match self.get(t) {
            Term::IntConst(n) => Some(*n),
            _ => None,
        }
    }

    // ------------------------------------------------------------------
    // Boolean builders
    // ------------------------------------------------------------------

    /// Boolean negation (with double-negation and constant folding).
    pub fn not(&mut self, t: TermId) -> TermId {
        debug_assert_eq!(self.sort_of(t), Sort::Bool);
        match self.get(t) {
            Term::True => self.ff(),
            Term::False => self.tt(),
            Term::Not(inner) => *inner,
            _ => self.intern(Term::Not(t)),
        }
    }

    fn nary_bool(&mut self, kids: &[TermId], is_and: bool) -> TermId {
        let (absorb, neutral): (Term, Term) = if is_and {
            (Term::False, Term::True)
        } else {
            (Term::True, Term::False)
        };
        let mut flat: Vec<TermId> = Vec::with_capacity(kids.len());
        let mut stack: Vec<TermId> = kids.to_vec();
        stack.reverse();
        while let Some(k) = stack.pop() {
            debug_assert_eq!(self.sort_of(k), Sort::Bool);
            let node = self.get(k).clone();
            if node == absorb {
                return if is_and { self.ff() } else { self.tt() };
            }
            if node == neutral {
                continue;
            }
            match (&node, is_and) {
                (Term::And(inner), true) | (Term::Or(inner), false) => {
                    for &i in inner.iter().rev() {
                        stack.push(i);
                    }
                }
                _ => flat.push(k),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        // x ∧ ¬x = false, x ∨ ¬x = true.
        for &k in &flat {
            if let Term::Not(inner) = self.get(k) {
                if flat.binary_search(inner).is_ok() {
                    return if is_and { self.ff() } else { self.tt() };
                }
            }
        }
        match flat.len() {
            0 => {
                if is_and {
                    self.tt()
                } else {
                    self.ff()
                }
            }
            1 => flat[0],
            _ => {
                let node = if is_and {
                    Term::And(flat.into_boxed_slice())
                } else {
                    Term::Or(flat.into_boxed_slice())
                };
                self.intern(node)
            }
        }
    }

    /// N-ary conjunction.
    pub fn and(&mut self, kids: &[TermId]) -> TermId {
        self.nary_bool(kids, true)
    }

    /// N-ary disjunction.
    pub fn or(&mut self, kids: &[TermId]) -> TermId {
        self.nary_bool(kids, false)
    }

    /// Implication `a → b`, rewritten as `¬a ∨ b`.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        let na = self.not(a);
        self.or(&[na, b])
    }

    /// Bi-implication `a ↔ b`, rewritten as `(a → b) ∧ (b → a)`.
    pub fn iff(&mut self, a: TermId, b: TermId) -> TermId {
        let ab = self.implies(a, b);
        let ba = self.implies(b, a);
        self.and(&[ab, ba])
    }

    // ------------------------------------------------------------------
    // Integer builders
    // ------------------------------------------------------------------

    /// N-ary integer sum with flattening and constant folding.
    pub fn add(&mut self, kids: &[TermId]) -> TermId {
        let mut flat: Vec<TermId> = Vec::with_capacity(kids.len());
        let mut konst: i64 = 0;
        let mut stack: Vec<TermId> = kids.to_vec();
        stack.reverse();
        while let Some(k) = stack.pop() {
            debug_assert_eq!(self.sort_of(k), Sort::Int);
            match self.get(k) {
                Term::IntConst(n) => konst = konst.checked_add(*n).expect("int overflow in add"),
                Term::Add(inner) => {
                    for &i in inner.iter().rev() {
                        stack.push(i);
                    }
                }
                _ => flat.push(k),
            }
        }
        if konst != 0 {
            let c = self.int(konst);
            flat.push(c);
        }
        match flat.len() {
            0 => self.int(0),
            1 => flat[0],
            _ => {
                flat.sort_unstable();
                self.intern(Term::Add(flat.into_boxed_slice()))
            }
        }
    }

    /// Binary subtraction `a - b`.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        let nb = self.mul_const(-1, b);
        self.add(&[a, nb])
    }

    /// Negation `-a`.
    pub fn neg_int(&mut self, a: TermId) -> TermId {
        self.mul_const(-1, a)
    }

    /// Multiplication by a constant, with folding (`0·t = 0`, `1·t = t`,
    /// `c·(d·t) = (cd)·t`, `c·k = ck` for constant `k`).
    pub fn mul_const(&mut self, c: i64, t: TermId) -> TermId {
        debug_assert_eq!(self.sort_of(t), Sort::Int);
        if c == 0 {
            return self.int(0);
        }
        if c == 1 {
            return t;
        }
        match self.get(t) {
            Term::IntConst(n) => {
                let v = c.checked_mul(*n).expect("int overflow in mul_const");
                self.int(v)
            }
            Term::MulConst(d, inner) => {
                let (d, inner) = (*d, *inner);
                let cd = c.checked_mul(d).expect("int overflow in mul_const");
                self.mul_const(cd, inner)
            }
            Term::Add(kids) => {
                let kids: Vec<TermId> = kids.to_vec();
                let scaled: Vec<TermId> = kids.into_iter().map(|k| self.mul_const(c, k)).collect();
                self.add(&scaled)
            }
            _ => self.intern(Term::MulConst(c, t)),
        }
    }

    // ------------------------------------------------------------------
    // Comparison builders (everything lowers to `Le`)
    // ------------------------------------------------------------------

    /// `a ≤ b`, folding constant comparisons.
    pub fn le(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert_eq!(self.sort_of(a), Sort::Int);
        debug_assert_eq!(self.sort_of(b), Sort::Int);
        if a == b {
            return self.tt();
        }
        if let (Some(x), Some(y)) = (self.as_int_const(a), self.as_int_const(b)) {
            return if x <= y { self.tt() } else { self.ff() };
        }
        self.intern(Term::Le(a, b))
    }

    /// `a < b`, rewritten as `a + 1 ≤ b` (integer semantics).
    pub fn lt(&mut self, a: TermId, b: TermId) -> TermId {
        let one = self.int(1);
        let a1 = self.add(&[a, one]);
        self.le(a1, b)
    }

    /// `a ≥ b`.
    pub fn ge(&mut self, a: TermId, b: TermId) -> TermId {
        self.le(b, a)
    }

    /// `a > b`.
    pub fn gt(&mut self, a: TermId, b: TermId) -> TermId {
        self.lt(b, a)
    }

    /// `a = b`, rewritten as `a ≤ b ∧ b ≤ a`.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        let le1 = self.le(a, b);
        let le2 = self.le(b, a);
        self.and(&[le1, le2])
    }

    /// `a ≠ b`, rewritten as `a < b ∨ b < a`.
    pub fn ne(&mut self, a: TermId, b: TermId) -> TermId {
        let lt1 = self.lt(a, b);
        let lt2 = self.lt(b, a);
        self.or(&[lt1, lt2])
    }

    // ------------------------------------------------------------------
    // Aggregations over term slices (expanded, since QF-LIA has no such ops)
    // ------------------------------------------------------------------

    /// `max(ts) ≥ bound`, expanded to `∨ᵢ tᵢ ≥ bound`.
    ///
    /// # Panics
    /// Panics if `ts` is empty.
    pub fn max_ge(&mut self, ts: &[TermId], bound: TermId) -> TermId {
        assert!(!ts.is_empty(), "max over empty slice");
        let parts: Vec<TermId> = ts.iter().map(|&t| self.ge(t, bound)).collect();
        self.or(&parts)
    }

    /// `max(ts) ≤ bound`, expanded to `∧ᵢ tᵢ ≤ bound`.
    ///
    /// # Panics
    /// Panics if `ts` is empty.
    pub fn max_le(&mut self, ts: &[TermId], bound: TermId) -> TermId {
        assert!(!ts.is_empty(), "max over empty slice");
        let parts: Vec<TermId> = ts.iter().map(|&t| self.le(t, bound)).collect();
        self.and(&parts)
    }

    /// `min(ts) ≤ bound`, expanded to `∨ᵢ tᵢ ≤ bound`.
    ///
    /// # Panics
    /// Panics if `ts` is empty.
    pub fn min_le(&mut self, ts: &[TermId], bound: TermId) -> TermId {
        assert!(!ts.is_empty(), "min over empty slice");
        let parts: Vec<TermId> = ts.iter().map(|&t| self.le(t, bound)).collect();
        self.or(&parts)
    }

    /// `min(ts) ≥ bound`, expanded to `∧ᵢ tᵢ ≥ bound`.
    ///
    /// # Panics
    /// Panics if `ts` is empty.
    pub fn min_ge(&mut self, ts: &[TermId], bound: TermId) -> TermId {
        assert!(!ts.is_empty(), "min over empty slice");
        let parts: Vec<TermId> = ts.iter().map(|&t| self.ge(t, bound)).collect();
        self.and(&parts)
    }

    /// Pretty-prints a term (for diagnostics and tests).
    pub fn display(&self, t: TermId) -> String {
        match self.get(t) {
            Term::True => "true".into(),
            Term::False => "false".into(),
            Term::Not(x) => format!("(not {})", self.display(*x)),
            Term::And(kids) => {
                let parts: Vec<String> = kids.iter().map(|&k| self.display(k)).collect();
                format!("(and {})", parts.join(" "))
            }
            Term::Or(kids) => {
                let parts: Vec<String> = kids.iter().map(|&k| self.display(k)).collect();
                format!("(or {})", parts.join(" "))
            }
            Term::IntConst(n) => n.to_string(),
            Term::Var(v) => self.vars[v.0 as usize].name.clone(),
            Term::Add(kids) => {
                let parts: Vec<String> = kids.iter().map(|&k| self.display(k)).collect();
                format!("(+ {})", parts.join(" "))
            }
            Term::MulConst(c, x) => format!("(* {} {})", c, self.display(*x)),
            Term::Le(a, b) => format!("(<= {} {})", self.display(*a), self.display(*b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut p = TermPool::new();
        let a = p.int(5);
        let b = p.int(5);
        assert_eq!(a, b);
        let v = p.int_var("x", 0, 10);
        let x1 = p.var(v);
        let x2 = p.var(v);
        assert_eq!(x1, x2);
    }

    #[test]
    fn var_redeclaration_is_idempotent() {
        let mut p = TermPool::new();
        let a = p.int_var("x", 0, 10);
        let b = p.int_var("x", 0, 10);
        assert_eq!(a, b);
        assert_eq!(p.find_var("x"), Some(a));
        assert_eq!(p.find_var("y"), None);
    }

    #[test]
    #[should_panic(expected = "different sort or bounds")]
    fn var_redeclaration_with_new_bounds_panics() {
        let mut p = TermPool::new();
        p.int_var("x", 0, 10);
        p.int_var("x", 0, 11);
    }

    #[test]
    fn not_simplifies() {
        let mut p = TermPool::new();
        let v = p.bool_var("b");
        let b = p.var(v);
        let nb = p.not(b);
        assert_eq!(p.not(nb), b);
        let t = p.tt();
        assert_eq!(p.not(t), p.ff());
    }

    #[test]
    fn and_or_flatten_and_fold() {
        let mut p = TermPool::new();
        let a = p.bool_var("a");
        let b = p.bool_var("b");
        let (ta, tb) = (p.var(a), p.var(b));
        let tt = p.tt();
        let ff = p.ff();
        assert_eq!(p.and(&[ta, tt]), ta);
        assert_eq!(p.and(&[ta, ff]), ff);
        assert_eq!(p.or(&[ta, tt]), tt);
        assert_eq!(p.or(&[ta, ff]), ta);
        // flattening: and(a, and(a, b)) == and(a, b)
        let inner = p.and(&[ta, tb]);
        let outer = p.and(&[ta, inner]);
        assert_eq!(outer, inner);
        // complement annihilation
        let na = p.not(ta);
        assert_eq!(p.and(&[ta, na]), ff);
        assert_eq!(p.or(&[ta, na]), tt);
    }

    #[test]
    fn add_folds_constants() {
        let mut p = TermPool::new();
        let v = p.int_var("x", 0, 100);
        let x = p.var(v);
        let c2 = p.int(2);
        let c3 = p.int(3);
        let s = p.add(&[c2, x, c3]);
        // x + 5
        match p.get(s) {
            Term::Add(kids) => {
                assert_eq!(kids.len(), 2);
                let consts: Vec<i64> = kids.iter().filter_map(|&k| p.as_int_const(k)).collect();
                assert_eq!(consts, vec![5]);
            }
            other => panic!("expected Add, got {other:?}"),
        }
        let only_consts = p.add(&[c2, c3]);
        assert_eq!(p.as_int_const(only_consts), Some(5));
    }

    #[test]
    fn mul_const_folds() {
        let mut p = TermPool::new();
        let v = p.int_var("x", 0, 100);
        let x = p.var(v);
        assert_eq!(p.mul_const(1, x), x);
        assert_eq!(p.mul_const(0, x), p.int(0));
        let m2 = p.mul_const(2, x);
        let m6 = p.mul_const(3, m2);
        assert_eq!(m6, p.mul_const(6, x));
        let c = p.int(4);
        assert_eq!(p.mul_const(3, c), p.int(12));
    }

    #[test]
    fn comparisons_fold_on_constants() {
        let mut p = TermPool::new();
        let c1 = p.int(1);
        let c2 = p.int(2);
        assert_eq!(p.le(c1, c2), p.tt());
        assert_eq!(p.le(c2, c1), p.ff());
        assert_eq!(p.lt(c1, c2), p.tt());
        assert_eq!(p.lt(c1, c1), p.ff());
        assert_eq!(p.eq(c1, c1), p.tt());
        assert_eq!(p.ne(c1, c2), p.tt());
        assert_eq!(p.ne(c1, c1), p.ff());
    }

    #[test]
    fn reflexive_le_is_true() {
        let mut p = TermPool::new();
        let v = p.int_var("x", 0, 9);
        let x = p.var(v);
        assert_eq!(p.le(x, x), p.tt());
    }

    #[test]
    fn display_roundtrip_shape() {
        let mut p = TermPool::new();
        let v = p.int_var("x", 0, 9);
        let x = p.var(v);
        let c = p.int(3);
        let f = p.le(x, c);
        assert_eq!(p.display(f), "(<= x 3)");
    }

    #[test]
    fn aggregation_expansions() {
        let mut p = TermPool::new();
        let vars: Vec<TermId> = (0..3)
            .map(|i| {
                let v = p.int_var(&format!("x{i}"), 0, 9);
                p.var(v)
            })
            .collect();
        let b = p.int(5);
        let f = p.max_ge(&vars, b);
        match p.get(f) {
            Term::Or(kids) => assert_eq!(kids.len(), 3),
            other => panic!("expected Or, got {other:?}"),
        }
        let g = p.max_le(&vars, b);
        match p.get(g) {
            Term::And(kids) => assert_eq!(kids.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
    }
}
