//! A text frontend for the solver: an SMT-LIB 2 *subset* parser and script
//! runner.
//!
//! Makes the solver usable standalone (and testable against hand-written
//! problems) without going through the rule DSL. Supported forms:
//!
//! ```text
//! (declare-const x Int)              ; bounded via :lo/:hi annotations, or
//! (declare-const x (Int 0 60))       ; the shorthand bounded-int sort
//! (declare-const b Bool)
//! (assert <term>)
//! (push) (pop)
//! (check-sat)                        ; prints sat/unsat/unknown
//! (get-value (x y))                  ; after sat
//! (minimize x) (maximize x)
//! (get-stats)                        ; non-standard: per-check cost profile
//! ```
//!
//! Terms: integer literals, declared constants, `(+ …)`, `(- a b)`,
//! `(- a)`, `(* c t)` with a literal coefficient, comparisons
//! `< <= > >= = distinct`, and booleans `and or not => true false ite`-free.
//!
//! Unbounded `Int` constants default to a wide-but-finite range
//! (±2³¹), since the decision procedure requires finite branching.

use std::fmt;

use crate::solver::{SatResult, Solver};
use crate::term::{Sort, TermId, VarId};

/// Default bounds for plain `Int` declarations.
const DEFAULT_LO: i64 = -(1 << 31);
/// Default bounds for plain `Int` declarations.
const DEFAULT_HI: i64 = 1 << 31;

/// An S-expression.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Sexp {
    Atom(String),
    List(Vec<Sexp>),
}

/// A parse or execution error with position info.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmtLibError {
    /// Byte offset (parse errors) or 0 (execution errors).
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for SmtLibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "smtlib error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SmtLibError {}

fn err(offset: usize, message: impl Into<String>) -> SmtLibError {
    SmtLibError {
        offset,
        message: message.into(),
    }
}

/// Tokenizes and parses all top-level S-expressions.
fn parse_sexps(src: &str) -> Result<Vec<Sexp>, SmtLibError> {
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut stack: Vec<Vec<Sexp>> = vec![Vec::new()];
    while i < bytes.len() {
        match bytes[i] as char {
            c if c.is_whitespace() => i += 1,
            ';' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                stack.push(Vec::new());
                i += 1;
            }
            ')' => {
                let done = stack.pop().ok_or_else(|| err(i, "unbalanced `)`"))?;
                let parent = stack.last_mut().ok_or_else(|| err(i, "unbalanced `)`"))?;
                parent.push(Sexp::List(done));
                i += 1;
            }
            _ => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_whitespace() || c == '(' || c == ')' || c == ';' {
                        break;
                    }
                    i += 1;
                }
                stack
                    .last_mut()
                    .expect("stack never empty")
                    .push(Sexp::Atom(src[start..i].to_string()));
            }
        }
    }
    if stack.len() != 1 {
        return Err(err(src.len(), "unbalanced `(`"));
    }
    Ok(stack.pop().unwrap())
}

/// The outcome of running a script: every line of output the script
/// produced (`sat`, values, objective results, …).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScriptOutput {
    /// One entry per output-producing command, in order.
    pub lines: Vec<String>,
}

/// Runs an SMT-LIB-subset script against a fresh [`Solver`].
pub fn run_script(src: &str) -> Result<ScriptOutput, SmtLibError> {
    let sexps = parse_sexps(src)?;
    let mut solver = Solver::new();
    let mut out = ScriptOutput::default();
    for form in sexps {
        exec(&mut solver, &form, &mut out)?;
    }
    Ok(out)
}

fn atom(s: &Sexp) -> Option<&str> {
    match s {
        Sexp::Atom(a) => Some(a),
        Sexp::List(_) => None,
    }
}

fn exec(solver: &mut Solver, form: &Sexp, out: &mut ScriptOutput) -> Result<(), SmtLibError> {
    let Sexp::List(items) = form else {
        return Err(err(0, format!("expected a command list, found {form:?}")));
    };
    let head = items
        .first()
        .and_then(atom)
        .ok_or_else(|| err(0, "empty command"))?;
    match head {
        "declare-const" | "declare-fun" => {
            // (declare-const x Int) | (declare-const x (Int lo hi)) |
            // (declare-fun x () Int)
            let name = items
                .get(1)
                .and_then(atom)
                .ok_or_else(|| err(0, "declare-const needs a name"))?;
            let sort = match head {
                "declare-const" => items.get(2),
                _ => {
                    // declare-fun must have an empty argument list.
                    match items.get(2) {
                        Some(Sexp::List(args)) if args.is_empty() => {}
                        _ => return Err(err(0, "only zero-arity declare-fun is supported")),
                    }
                    items.get(3)
                }
            }
            .ok_or_else(|| err(0, "declaration needs a sort"))?;
            match sort {
                Sexp::Atom(s) if s == "Int" => {
                    solver.int_var(name, DEFAULT_LO, DEFAULT_HI);
                }
                Sexp::Atom(s) if s == "Bool" => {
                    solver.bool_var(name);
                }
                Sexp::List(parts) => {
                    // (Int lo hi)
                    let ok = parts.len() == 3 && atom(&parts[0]) == Some("Int");
                    if !ok {
                        return Err(err(0, "expected (Int lo hi)"));
                    }
                    let lo = parse_int(&parts[1])?;
                    let hi = parse_int(&parts[2])?;
                    if lo > hi {
                        return Err(err(0, "empty bounded-int range"));
                    }
                    solver.int_var(name, lo, hi);
                }
                other => return Err(err(0, format!("unsupported sort {other:?}"))),
            }
        }
        "assert" => {
            let t = items.get(1).ok_or_else(|| err(0, "assert needs a term"))?;
            let term = build_term(solver, t)?;
            if solver.pool().sort_of(term) != Sort::Bool {
                return Err(err(0, "assert needs a boolean term"));
            }
            solver.assert(term);
        }
        "push" => solver.push(),
        "pop" => {
            if solver.num_frames() == 0 {
                return Err(err(0, "pop without matching push"));
            }
            solver.pop();
        }
        "check-sat" => {
            let result = solver
                .check()
                .map_err(|e| err(0, format!("check-sat failed: {e}")))?;
            let line = match result {
                SatResult::Sat => "sat",
                SatResult::Unsat => "unsat",
                SatResult::Unknown => "unknown",
            };
            out.lines.push(line.to_string());
        }
        "get-value" => {
            let Some(Sexp::List(names)) = items.get(1) else {
                return Err(err(0, "get-value needs a list of constants"));
            };
            let model = solver
                .model()
                .cloned()
                .ok_or_else(|| err(0, "get-value before a sat check-sat"))?;
            let mut parts = Vec::new();
            for n in names {
                let name = atom(n).ok_or_else(|| err(0, "get-value: expected a name"))?;
                let v = lookup(solver, name)?;
                let rendered = match solver.pool().var_info(v).sort {
                    Sort::Int => model
                        .int_value(v)
                        .map(|x| x.to_string())
                        .unwrap_or_else(|| "?".to_string()),
                    Sort::Bool => model.bool_value(v).to_string(),
                };
                parts.push(format!("({name} {rendered})"));
            }
            out.lines.push(format!("({})", parts.join(" ")));
        }
        "minimize" | "maximize" => {
            let name = items
                .get(1)
                .and_then(atom)
                .ok_or_else(|| err(0, "objective needs a constant name"))?;
            let v = lookup(solver, name)?;
            let result = if head == "minimize" {
                solver.minimize(v)
            } else {
                solver.maximize(v)
            };
            let result = result.map_err(|e| err(0, format!("objective failed: {e}")))?;
            out.lines.push(match result {
                Some(x) => format!("({head} {name} {x})"),
                None => format!("({head} {name} unsat)"),
            });
        }
        "get-stats" => {
            // Non-standard: the solver's per-check cost profile (DPLL(T)
            // checks, warm-tableau work, memo/cache traffic) as one
            // `(:key value …)` attribute line, in the spirit of Z3's
            // `(get-info :all-statistics)`.
            let s = solver.stats();
            out.lines.push(format!(
                "(:checks {} :theory-checks {} :theory-conflicts {} \
                 :theory-memo-hits {} :theory-propagations {} \
                 :theory-explanations {} :tableau-builds {} :slack-rows {} \
                 :slack-row-hits {} :pivots {} :bnb-nodes {} \
                 :encode-cache {}/{} :session-pool {}/{}/{})",
                s.checks,
                s.theory_checks,
                s.theory_conflicts,
                s.theory_memo_hits,
                s.theory_propagations,
                s.theory_explanations,
                s.tableau_builds,
                s.slack_rows_built,
                s.slack_row_hits,
                s.pivots,
                s.bnb_nodes,
                s.encode_cache_hits,
                s.encode_cache_hits + s.encode_cache_misses,
                s.pool_hits,
                s.pool_misses,
                s.pool_evictions,
            ));
        }
        "set-logic" | "set-option" | "set-info" | "exit" => {} // accepted, ignored
        other => return Err(err(0, format!("unsupported command `{other}`"))),
    }
    Ok(())
}

fn lookup(solver: &Solver, name: &str) -> Result<VarId, SmtLibError> {
    solver
        .pool()
        .find_var(name)
        .ok_or_else(|| err(0, format!("undeclared constant `{name}`")))
}

fn parse_int(s: &Sexp) -> Result<i64, SmtLibError> {
    match s {
        Sexp::Atom(a) => a
            .parse::<i64>()
            .map_err(|e| err(0, format!("bad integer `{a}`: {e}"))),
        // SMT-LIB negative literals: (- 5)
        Sexp::List(parts) if parts.len() == 2 && atom(&parts[0]) == Some("-") => {
            Ok(-parse_int(&parts[1])?)
        }
        other => Err(err(0, format!("expected integer, found {other:?}"))),
    }
}

fn build_term(solver: &mut Solver, s: &Sexp) -> Result<TermId, SmtLibError> {
    match s {
        Sexp::Atom(a) => {
            if a == "true" {
                return Ok(solver.pool_mut().tt());
            }
            if a == "false" {
                return Ok(solver.pool_mut().ff());
            }
            if let Ok(n) = a.parse::<i64>() {
                return Ok(solver.int(n));
            }
            let v = lookup(solver, a)?;
            Ok(solver.var(v))
        }
        Sexp::List(items) => {
            let head = items
                .first()
                .and_then(atom)
                .ok_or_else(|| err(0, "empty term"))?;
            let args: Vec<&Sexp> = items[1..].iter().collect();
            let need = |n: usize| -> Result<(), SmtLibError> {
                if args.len() == n {
                    Ok(())
                } else {
                    Err(err(0, format!("`{head}` expects {n} arguments")))
                }
            };
            match head {
                "+" => {
                    let kids: Vec<TermId> = args
                        .iter()
                        .map(|a| build_term(solver, a))
                        .collect::<Result<_, _>>()?;
                    Ok(solver.add(&kids))
                }
                "-" => match args.len() {
                    1 => {
                        let t = build_term(solver, args[0])?;
                        Ok(solver.mul_const(-1, t))
                    }
                    2 => {
                        let a = build_term(solver, args[0])?;
                        let b = build_term(solver, args[1])?;
                        Ok(solver.sub(a, b))
                    }
                    _ => Err(err(0, "`-` expects 1 or 2 arguments")),
                },
                "*" => {
                    need(2)?;
                    let a = build_term(solver, args[0])?;
                    let b = build_term(solver, args[1])?;
                    match (solver.pool().as_int_const(a), solver.pool().as_int_const(b)) {
                        (Some(c), _) => Ok(solver.mul_const(c, b)),
                        (_, Some(c)) => Ok(solver.mul_const(c, a)),
                        _ => Err(err(
                            0,
                            "`*` needs a literal coefficient (linear arithmetic)",
                        )),
                    }
                }
                "<" | "<=" | ">" | ">=" | "=" | "distinct" => {
                    need(2)?;
                    let a = build_term(solver, args[0])?;
                    let b = build_term(solver, args[1])?;
                    // `=` over booleans is iff; over ints it is equality.
                    if head == "=" && solver.pool().sort_of(a) == Sort::Bool {
                        return Ok(solver.pool_mut().iff(a, b));
                    }
                    Ok(match head {
                        "<" => solver.lt(a, b),
                        "<=" => solver.le(a, b),
                        ">" => solver.gt(a, b),
                        ">=" => solver.ge(a, b),
                        "=" => solver.eq(a, b),
                        _ => solver.ne(a, b),
                    })
                }
                "and" | "or" => {
                    let kids: Vec<TermId> = args
                        .iter()
                        .map(|a| build_term(solver, a))
                        .collect::<Result<_, _>>()?;
                    Ok(if head == "and" {
                        solver.and(&kids)
                    } else {
                        solver.or(&kids)
                    })
                }
                "not" => {
                    need(1)?;
                    let t = build_term(solver, args[0])?;
                    Ok(solver.not(t))
                }
                "=>" => {
                    need(2)?;
                    let a = build_term(solver, args[0])?;
                    let b = build_term(solver, args[1])?;
                    Ok(solver.implies(a, b))
                }
                other => Err(err(0, format!("unsupported operator `{other}`"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_and_values() {
        let out = run_script(
            "(declare-const x (Int 0 10))
             (declare-const y (Int 0 10))
             (assert (= (+ x y) 7))
             (assert (>= x 5))
             (check-sat)
             (get-value (x y))",
        )
        .unwrap();
        assert_eq!(out.lines[0], "sat");
        // Parse back the values and verify the constraints.
        let vals: Vec<i64> = out.lines[1]
            .split(|c: char| !c.is_ascii_digit() && c != '-')
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().unwrap())
            .collect();
        assert_eq!(vals.len(), 2);
        assert_eq!(vals[0] + vals[1], 7);
        assert!(vals[0] >= 5);
    }

    #[test]
    fn unsat_detection() {
        let out = run_script(
            "(declare-const x (Int 0 10))
             (assert (> x 4))
             (assert (< x 3))
             (check-sat)",
        )
        .unwrap();
        assert_eq!(out.lines, vec!["unsat"]);
    }

    #[test]
    fn push_pop_scoping() {
        let out = run_script(
            "(declare-const x (Int 0 10))
             (assert (<= x 5))
             (check-sat)
             (push)
             (assert (>= x 6))
             (check-sat)
             (pop)
             (check-sat)",
        )
        .unwrap();
        assert_eq!(out.lines, vec!["sat", "unsat", "sat"]);
    }

    #[test]
    fn objectives() {
        let out = run_script(
            "(declare-const x (Int 0 60))
             (declare-const y (Int 0 60))
             (assert (= (+ x y) 100))
             (minimize x)
             (maximize x)",
        )
        .unwrap();
        assert_eq!(out.lines, vec!["(minimize x 40)", "(maximize x 60)"]);
    }

    #[test]
    fn booleans_and_implication() {
        let out = run_script(
            "(declare-const b Bool)
             (declare-const x (Int 0 10))
             (assert (=> b (>= x 7)))
             (assert b)
             (check-sat)
             (minimize x)",
        )
        .unwrap();
        assert_eq!(out.lines, vec!["sat", "(minimize x 7)"]);
    }

    #[test]
    fn negative_literals_and_arith() {
        let out = run_script(
            "(declare-const x (Int (- 10) 10))
             (assert (= (* 2 x) (- 0 8)))
             (check-sat)
             (get-value (x))",
        )
        .unwrap();
        assert_eq!(out.lines, vec!["sat", "((x -4))"]);
    }

    #[test]
    fn distinct_and_iff() {
        let out = run_script(
            "(declare-const a Bool)
             (declare-const b Bool)
             (assert (= a b))
             (assert a)
             (check-sat)
             (get-value (b))",
        )
        .unwrap();
        assert_eq!(out.lines, vec!["sat", "((b true))"]);
        let out = run_script(
            "(declare-const x (Int 0 1))
             (declare-const y (Int 0 1))
             (assert (distinct x y))
             (assert (= x 1))
             (check-sat)
             (get-value (y))",
        )
        .unwrap();
        assert_eq!(out.lines, vec!["sat", "((y 0))"]);
    }

    #[test]
    fn declare_fun_zero_arity() {
        let out = run_script(
            "(set-logic QF_LIA)
             (declare-fun x () (Int 0 5))
             (assert (>= x 5))
             (check-sat)
             (get-value (x))",
        )
        .unwrap();
        assert_eq!(out.lines, vec!["sat", "((x 5))"]);
    }

    #[test]
    fn comments_are_ignored() {
        let out = run_script(
            "; a header comment
             (declare-const x (Int 0 3)) ; trailing
             (check-sat)",
        )
        .unwrap();
        assert_eq!(out.lines, vec!["sat"]);
    }

    #[test]
    fn errors_are_reported() {
        assert!(run_script("(assert (> x 0))")
            .unwrap_err()
            .message
            .contains("undeclared"));
        assert!(run_script("(pop)").unwrap_err().message.contains("pop"));
        assert!(run_script("(declare-const x Real)")
            .unwrap_err()
            .message
            .contains("sort"));
        assert!(run_script("(declare-const x (Int 0 10)) (assert (* x x))")
            .unwrap_err()
            .message
            .contains("coefficient"));
        assert!(run_script("(foo)")
            .unwrap_err()
            .message
            .contains("unsupported command"));
        assert!(run_script("((").unwrap_err().message.contains("unbalanced"));
        assert!(run_script(")").unwrap_err().message.contains("unbalanced"));
    }

    #[test]
    fn get_stats_reports_cost_profile() {
        let out = run_script(
            "(declare-const x (Int 0 60))
             (declare-const y (Int 0 60))
             (assert (= (+ x y) 100))
             (check-sat)
             (check-sat)
             (get-stats)",
        )
        .unwrap();
        assert_eq!(out.lines[0], "sat");
        let stats = &out.lines[2];
        assert!(stats.starts_with("(:checks 2"), "{stats}");
        for key in [
            ":theory-checks",
            ":theory-memo-hits",
            ":theory-propagations",
            ":theory-explanations",
            ":tableau-builds",
            ":pivots",
            ":bnb-nodes",
            ":encode-cache",
        ] {
            assert!(stats.contains(key), "missing {key} in {stats}");
        }
        // The repeated check-sat re-checks the same boolean model, so the
        // warm backend must have answered it from the verdict memo.
        assert!(!stats.contains(":theory-memo-hits 0"), "{stats}");
    }

    #[test]
    fn get_value_before_sat_errors() {
        let e = run_script("(declare-const x (Int 0 1)) (get-value (x))").unwrap_err();
        assert!(e.message.contains("before"));
    }

    #[test]
    fn assert_nonboolean_errors() {
        let e = run_script("(declare-const x (Int 0 1)) (assert (+ x 1))").unwrap_err();
        assert!(e.message.contains("boolean"));
    }
}
