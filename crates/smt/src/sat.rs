//! A CDCL SAT solver.
//!
//! Classic MiniSat-style architecture: two-watched-literal propagation,
//! first-UIP conflict analysis with clause learning, VSIDS-style variable
//! activities with phase saving, Luby restarts, learned-clause database
//! reduction, and incremental solving under *assumptions* (which is how the
//! SMT layer implements `push`/`pop` frames and feasibility probes without
//! destroying learned clauses).

use std::fmt;

use crate::error::SolverError;

/// A SAT variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SatVar(pub(crate) u32);

impl SatVar {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a variable from a raw index, without allocating it in any
    /// solver. Literals over variables the solver never allocated are
    /// rejected by [`SatSolver::solve`] with an error, which is what tests
    /// of that rejection path use this constructor for.
    pub fn from_index(index: u32) -> SatVar {
        SatVar(index)
    }
}

impl fmt::Debug for SatVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Builds a literal from a variable and a polarity.
    pub fn new(v: SatVar, positive: bool) -> Lit {
        Lit(v.0 << 1 | u32::from(!positive))
    }

    /// The underlying variable.
    pub fn var(self) -> SatVar {
        SatVar(self.0 >> 1)
    }

    /// Whether the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The negated literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        self.negate()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}",
            if self.is_positive() { "" } else { "-" },
            self.0 >> 1
        )
    }
}

/// Ternary assignment value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LBool {
    True,
    False,
    Undef,
}

impl LBool {
    fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

#[derive(Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
}

type ClauseRef = usize;

#[derive(Clone, Copy)]
struct Watcher {
    clause: ClauseRef,
    /// Blocking literal: if true under the current assignment, skip the clause.
    blocker: Lit,
}

/// Outcome of a SAT query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatOutcome {
    /// A satisfying assignment was found.
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
}

/// Statistics counters for a [`SatSolver`].
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SatStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnts: usize,
    /// Learnt-database reduction rounds performed.
    pub reduce_dbs: u64,
    /// Learnt clauses evicted by reduction (root-satisfied leftovers plus
    /// the low-activity half).
    pub learnts_evicted: u64,
    /// Literals enqueued by the theory propagator ([`TheoryPropagator`])
    /// instead of by a decision or a clause.
    pub theory_propagations: u64,
    /// Theory reason clauses materialized on demand during conflict
    /// analysis (a subset of `theory_propagations`: only propagated
    /// literals actually resolved on during 1-UIP need an explanation).
    pub theory_explanations: u64,
}

/// Why a trail literal holds: it is a decision/assumption (`None`), it was
/// implied by a clause, or it was implied by the theory propagator and its
/// reason clause will be materialized lazily if conflict analysis ever
/// resolves on it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Reason {
    /// A decision, an assumption, or an unassigned variable.
    None,
    /// Implied by a clause (unit propagation or an asserting learnt).
    Clause(ClauseRef),
    /// Implied by the theory propagator; explanation is generated on demand.
    Theory,
}

/// A theory plug-in consulted by [`SatSolver::solve_with`] between unit
/// propagation and branching: it may derive literals implied by the theory
/// under the current assignment, which the SAT core enqueues on the trail
/// with a lazy theory reason.
///
/// Consultation happens at the *search root* — unit propagation at a
/// fixpoint, every assumption placed, no decisions on the trail — once per
/// solve plus once per backjump past the assumption boundary. A consult is
/// O(asserted + candidate atoms), so running it after every decision's
/// fixpoint would dominate wall time; at the root it prices in where the
/// payoff is, pre-placing the consequences of unit-asserted facts below
/// the whole search.
///
/// # Contract
///
/// * [`Self::propagate`] must return implied literals in a deterministic
///   order, and every antecedent of an implied literal must already be
///   assigned on the trail (the SAT core enqueues the implied literal
///   *after* its antecedents, which first-UIP analysis relies on).
/// * [`Self::explain`] must return the reason clause for a literal it
///   previously returned from `propagate`: the implied literal in slot 0,
///   followed by the negated antecedents, every one of which was false on
///   the trail when the literal was enqueued. The clause must be valid
///   independently of the current assignment (a theory lemma).
pub trait TheoryPropagator {
    /// Derives literals implied by the theory under the current assignment.
    /// Returning a literal that is already assigned is allowed (it is
    /// skipped); returning an unallocated variable is an error.
    fn propagate(&mut self, sat: &SatSolver) -> Result<Vec<Lit>, SolverError>;

    /// The reason clause for a literal previously returned by
    /// [`Self::propagate`], with the implied literal in slot 0.
    fn explain(&mut self, lit: Lit) -> Result<Vec<Lit>, SolverError>;
}

/// The CDCL SAT solver.
pub struct SatSolver {
    clauses: Vec<Clause>,
    free_clauses: Vec<ClauseRef>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    polarity: Vec<bool>,
    activity: Vec<f64>,
    reason: Vec<Reason>,
    level: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    /// Heap-free VSIDS: we keep a simple order cache rebuilt lazily.
    order: Vec<SatVar>,
    order_dirty: bool,
    /// Variables retired by [`Self::retract`] and available for reuse by
    /// [`Self::new_var`]. Frame selectors churn at the rate of push/pop —
    /// hundreds per decoded record in a long-lived session — and without
    /// recycling, `order`/`assigns` would grow forever and every solve's
    /// branching scan would slow linearly with session age.
    free_vars: Vec<SatVar>,
    /// Live-clause occurrence count per variable. A variable with zero
    /// occurrences appears in no attached clause, so no assignment to it can
    /// falsify anything: `pick_branch` leaves it undefined. This is what
    /// keeps long-lived sessions honest — after [`Self::retract`] deletes a
    /// frame's clauses, the frame's Tseitin/atom variables drop to zero
    /// occurrences and stop being decided, so the SMT layer never hands
    /// their (stale) theory atoms to the theory solver again.
    occ: Vec<u32>,
    var_inc: f64,
    cla_inc: f64,
    ok: bool,
    /// Set when a malformed clause (unallocated variable) was added; makes
    /// every subsequent [`Self::solve`] fail instead of indexing out of range.
    invalid: Option<SolverError>,
    seen: Vec<bool>,
    stats: SatStats,
    max_learnts: usize,
}

const VAR_DECAY: f64 = 1.0 / 0.95;
const CLA_DECAY: f64 = 1.0 / 0.999;

impl Default for SatSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> SatSolver {
        SatSolver {
            clauses: Vec::new(),
            free_clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            activity: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            order: Vec::new(),
            order_dirty: false,
            free_vars: Vec::new(),
            occ: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            invalid: None,
            seen: Vec::new(),
            stats: SatStats::default(),
            max_learnts: 4096,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Current statistics.
    pub fn stats(&self) -> SatStats {
        let mut s = self.stats;
        s.learnts = self
            .clauses
            .iter()
            .filter(|c| c.learnt && !c.lits.is_empty())
            .count();
        s
    }

    /// Number of live (attached) clauses in the database, problem and learnt
    /// alike. Retracting a frame must return this to its pre-frame value —
    /// the invariant the session-layer regression tests assert.
    pub fn num_live_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.lits.is_empty()).count()
    }

    /// Allocates a variable: a recycled one retired by [`Self::retract`] if
    /// available (reset to a fresh state — no clause mentions it, so reuse
    /// is invisible to the search), else a brand-new slot.
    pub fn new_var(&mut self) -> SatVar {
        if let Some(v) = self.free_vars.pop() {
            let i = v.index();
            debug_assert_eq!(self.assigns[i], LBool::Undef);
            debug_assert_eq!(self.occ[i], 0);
            self.polarity[i] = false;
            self.activity[i] = 0.0;
            self.reason[i] = Reason::None;
            self.level[i] = 0;
            self.seen[i] = false;
            self.order_dirty = true;
            return v;
        }
        let v = SatVar(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.polarity.push(false);
        self.activity.push(0.0);
        self.reason.push(Reason::None);
        self.level.push(0);
        self.seen.push(false);
        self.occ.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.push(v);
        self.order_dirty = true;
        v
    }

    fn value_lit(&self, l: Lit) -> LBool {
        match self.assigns[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => LBool::from_bool(l.is_positive()),
            LBool::False => LBool::from_bool(!l.is_positive()),
        }
    }

    /// The value a variable was actually *assigned* during search, or `None`
    /// for don't-care variables. The SMT layer only hands assigned theory
    /// atoms to the theory solver.
    pub fn assigned_value(&self, v: SatVar) -> Option<bool> {
        match self.assigns[v.index()] {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// Whether a variable's current assignment came from the theory
    /// propagator (and has not yet been rewritten to a learnt reason
    /// clause by conflict analysis).
    ///
    /// The SMT layer uses this to *exclude* theory-propagated literals from
    /// the conjunction it hands to the theory check: such a literal is
    /// entailed by the ordinary assertions below it on the trail, so
    /// re-asserting it into the tableau cannot change the verdict — it only
    /// inflates the check (one no-op bound assert per propagated literal)
    /// and splits the theory-verdict memo key away from the
    /// propagation-off fingerprint.
    pub fn reason_is_theory(&self, v: SatVar) -> bool {
        self.assigns[v.index()] != LBool::Undef && self.reason[v.index()] == Reason::Theory
    }

    /// Whether a variable occurs in at least one live attached clause.
    ///
    /// Zero-occurrence variables are don't-cares: `pick_branch` never
    /// decides them, no watched clause reacts to them, and assigning them
    /// cannot produce a unit propagation or a conflict. A theory propagator
    /// can therefore skip them when choosing candidates — enqueueing a
    /// zero-occurrence literal is pure trail traffic with no search effect.
    pub fn is_branchable(&self, v: SatVar) -> bool {
        self.occ.get(v.index()).is_some_and(|&n| n > 0)
    }

    /// The model value of a variable after a `Sat` outcome.
    pub fn model_value(&self, v: SatVar) -> bool {
        match self.assigns[v.index()] {
            LBool::True => true,
            LBool::False => false,
            // Don't-care variables keep their saved phase.
            LBool::Undef => self.polarity[v.index()],
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause at the root level. Returns `false` if the formula became
    /// trivially unsatisfiable.
    ///
    /// A clause referencing an unallocated variable is rejected: the clause
    /// database is marked invalid and every later [`Self::solve`] call
    /// returns [`SolverError::InvalidClause`] instead of panicking.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if lits.iter().any(|l| l.var().index() >= self.assigns.len()) {
            self.invalid = Some(SolverError::InvalidClause(
                "clause references an unallocated variable",
            ));
            return false;
        }
        // Adding a clause invalidates any in-progress search state (and any
        // model from a previous `solve`).
        self.cancel_until(0);
        if !self.ok {
            return false;
        }
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        // Remove literals false at level 0; detect tautologies & satisfied.
        let mut out: Vec<Lit> = Vec::with_capacity(c.len());
        for (i, &l) in c.iter().enumerate() {
            if i + 1 < c.len() && c[i + 1] == !l {
                return true; // tautology: contains l and ¬l (sorted adjacently)
            }
            match self.value_lit(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}
                LBool::Undef => out.push(l),
            }
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(out[0], Reason::None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(out, false);
                true
            }
        }
    }

    fn alloc_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        let c = Clause {
            lits,
            learnt,
            activity: 0.0,
        };
        if let Some(cr) = self.free_clauses.pop() {
            self.clauses[cr] = c;
            cr
        } else {
            self.clauses.push(c);
            self.clauses.len() - 1
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let (l0, l1) = (lits[0], lits[1]);
        for l in &lits {
            self.occ[l.var().index()] += 1;
        }
        let cr = self.alloc_clause(lits, learnt);
        self.watches[(!l0).code()].push(Watcher {
            clause: cr,
            blocker: l1,
        });
        self.watches[(!l1).code()].push(Watcher {
            clause: cr,
            blocker: l0,
        });
        cr
    }

    fn detach_clause(&mut self, cr: ClauseRef) {
        let (l0, l1) = (self.clauses[cr].lits[0], self.clauses[cr].lits[1]);
        self.watches[(!l0).code()].retain(|w| w.clause != cr);
        self.watches[(!l1).code()].retain(|w| w.clause != cr);
        for i in 0..self.clauses[cr].lits.len() {
            let v = self.clauses[cr].lits[i].var().index();
            self.occ[v] = self.occ[v].saturating_sub(1);
        }
        self.clauses[cr].lits.clear();
        self.free_clauses.push(cr);
    }

    /// Physically removes every clause mentioning `v` from the database and
    /// retires the variable.
    ///
    /// This is the retraction primitive behind [`crate::Solver::retract`]:
    /// the SMT layer guards every frame assertion with a fresh *selector*
    /// variable, so deleting all clauses over the selector removes exactly
    /// the frame's assertions **and** every learnt clause whose derivation
    /// resolved through them. Soundness of the scan rests on two invariants
    /// of the frame discipline:
    ///
    /// * selectors are only ever *assumed* (at non-root pseudo-decision
    ///   levels), never asserted, so conflict analysis can never drop the
    ///   `¬selector` tag from a frame-dependent learnt clause via its
    ///   root-level-literal filter;
    /// * a guarded clause `¬sel ∨ …` can only ever imply `¬sel` itself at
    ///   the root level (implying anything else would need `sel` true at
    ///   the root, which never happens), so no root-level fact over a
    ///   non-selector variable depends on a retracted clause.
    ///
    /// Clause slots are recycled through the free list and both watch lists
    /// are repaired per clause (`detach_clause`), so database size
    /// stays bounded by the *live* assertions plus the learnt-clause cap.
    pub fn retract(&mut self, v: SatVar) {
        if v.index() >= self.assigns.len() {
            return; // unallocated: nothing can mention it
        }
        // Removing clauses invalidates in-progress search state exactly like
        // adding clauses does.
        self.cancel_until(0);
        for cr in 0..self.clauses.len() {
            if self.clauses[cr].lits.is_empty() {
                continue;
            }
            if self.clauses[cr].lits.iter().any(|l| l.var() == v) {
                // A root-level implication may hold this clause as its
                // reason; drop the dangling reference before detaching.
                let l0 = self.clauses[cr].lits[0];
                if self.reason[l0.var().index()] == Reason::Clause(cr) {
                    self.reason[l0.var().index()] = Reason::None;
                }
                self.detach_clause(cr);
            }
        }
        self.reason[v.index()] = Reason::None;
        // Retire the variable. With every clause mentioning it gone its
        // occurrence count is zero, so `pick_branch` will never decide it;
        // if it is also unassigned it can be recycled outright by
        // [`Self::new_var`]. (A selector root-assigned `¬sel` by an earlier
        // propagation stays on the trail and is simply left retired.)
        if self.assigns[v.index()] == LBool::Undef {
            self.free_vars.push(v);
        }
        // Decay surviving learnt activities: bumps earned proving facts
        // about the retracted frame should not dominate branching in the
        // post-retraction search. Halving (not zeroing) keeps frame-
        // independent lemmas warm while letting fresh conflicts overtake.
        for c in &mut self.clauses {
            if c.learnt {
                c.activity *= 0.5;
            }
        }
    }

    fn unchecked_enqueue(&mut self, l: Lit, from: Reason) {
        debug_assert_eq!(self.value_lit(l), LBool::Undef);
        let v = l.var().index();
        self.assigns[v] = LBool::from_bool(l.is_positive());
        self.level[v] = self.decision_level();
        self.reason[v] = from;
        self.trail.push(l);
    }

    /// Unit propagation. Returns a conflicting clause if one arises.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut i = 0;
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut conflict: Option<ClauseRef> = None;
            'watchers: while i < ws.len() {
                let w = ws[i];
                if self.value_lit(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let cr = w.clause;
                // Normalize so that lits[1] == ¬p.
                {
                    let c = &mut self.clauses[cr];
                    if c.lits[0] == !p {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], !p);
                }
                let first = self.clauses[cr].lits[0];
                if first != w.blocker && self.value_lit(first) == LBool::True {
                    ws[i] = Watcher {
                        clause: cr,
                        blocker: first,
                    };
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cr].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cr].lits[k];
                    if self.value_lit(lk) != LBool::False {
                        self.clauses[cr].lits.swap(1, k);
                        self.watches[(!lk).code()].push(Watcher {
                            clause: cr,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // No new watch: clause is unit or conflicting.
                ws[i] = Watcher {
                    clause: cr,
                    blocker: first,
                };
                i += 1;
                if self.value_lit(first) == LBool::False {
                    conflict = Some(cr);
                    self.qhead = self.trail.len();
                    break;
                }
                self.unchecked_enqueue(first, Reason::Clause(cr));
            }
            debug_assert!(self.watches[p.code()].is_empty());
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn var_bump(&mut self, v: SatVar) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order_dirty = true;
    }

    fn cla_bump(&mut self, cr: ClauseRef) {
        self.clauses[cr].activity += self.cla_inc;
        if self.clauses[cr].activity > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Materializes the reason clause of a theory-implied literal, on
    /// demand: conflict analysis is about to resolve on `pl`, so the lazy
    /// [`Reason::Theory`] marker must become a real clause.
    ///
    /// The clause is attached as a learnt (it is a theory lemma, valid
    /// beyond this conflict) and installed as `pl`'s reason so later
    /// resolutions and `is_reason` bookkeeping see an ordinary clause.
    /// Attaching mid-analysis is sound even though the watched literals may
    /// be false under the current assignment: a fully falsified clause is
    /// always scanned when its last watch falsifies, so the clause can only
    /// miss *early* unit propagations, never a conflict.
    fn explain_theory(
        &mut self,
        pl: Lit,
        prop: &mut Option<&mut dyn TheoryPropagator>,
    ) -> Result<ClauseRef, SolverError> {
        let Some(p) = prop.as_deref_mut() else {
            return Err(SolverError::Internal(
                "theory-implied literal resolved without a propagator",
            ));
        };
        let expl = p.explain(pl)?;
        if expl.first() != Some(&pl) {
            return Err(SolverError::Internal(
                "theory explanation must start with the implied literal",
            ));
        }
        // A unit explanation cannot occur: a propagation above the root
        // level always carries a frame guard or an antecedent literal (see
        // the propagator contract), and root-level literals are never
        // resolved on.
        if expl.len() < 2 {
            return Err(SolverError::Internal(
                "theory explanation for a non-root literal has no antecedents",
            ));
        }
        self.stats.theory_explanations += 1;
        let cr = self.attach_clause(expl, true);
        self.reason[pl.var().index()] = Reason::Clause(cr);
        Ok(cr)
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    ///
    /// Resolving on a theory-implied literal materializes its reason clause
    /// lazily via `prop` ([`Self::explain_theory`]).
    ///
    /// `Err` signals a broken trail invariant (a resolved non-decision
    /// literal without a reason clause); reported instead of panicking
    /// because this is the innermost loop of every `check()`.
    fn analyze(
        &mut self,
        mut conflict: ClauseRef,
        prop: &mut Option<&mut dyn TheoryPropagator>,
    ) -> Result<(Vec<Lit>, u32), SolverError> {
        let mut learnt: Vec<Lit> = vec![Lit::new(SatVar(0), true)]; // placeholder slot 0
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();

        loop {
            self.cla_bump(conflict);
            let lits: Vec<Lit> = self.clauses[conflict].lits.clone();
            let start = usize::from(p.is_some());
            for &q in &lits[start..] {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.var_bump(v);
                    self.seen[v.index()] = true;
                    if self.level[v.index()] >= self.decision_level() {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Pick the next trail literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            path_count -= 1;
            if path_count == 0 {
                p = Some(pl);
                break;
            }
            conflict = match self.reason[pl.var().index()] {
                Reason::Clause(r) => r,
                Reason::Theory => self.explain_theory(pl, prop)?,
                Reason::None => {
                    return Err(SolverError::Internal(
                        "resolved non-decision literal has no reason clause",
                    ))
                }
            };
            p = Some(pl);
        }
        let Some(uip) = p else {
            return Err(SolverError::Internal("conflict analysis found no UIP"));
        };
        learnt[0] = !uip;

        // Simple clause minimization: drop literals implied by the rest.
        // Theory-implied literals with an unmaterialized reason are simply
        // kept — sound, and materializing just for minimization would cost
        // more than the literal saves.
        let mut keep = vec![true; learnt.len()];
        for i in 1..learnt.len() {
            let v = learnt[i].var();
            if let Reason::Clause(r) = self.reason[v.index()] {
                let all_seen = self.clauses[r]
                    .lits
                    .iter()
                    .skip(1)
                    .all(|&l| self.seen[l.var().index()] || self.level[l.var().index()] == 0);
                if all_seen {
                    keep[i] = false;
                }
            }
        }
        let learnt: Vec<Lit> = learnt
            .iter()
            .enumerate()
            .filter(|&(i, _)| keep[i])
            .map(|(_, &l)| l)
            .collect();

        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        // Also clear any stragglers (minimization may leave seen bits set).
        for &l in self.trail.iter() {
            self.seen[l.var().index()] = false;
        }

        let bt_level = if learnt.len() == 1 {
            0
        } else {
            // Second-highest level in the clause.
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            self.level[learnt[max_i].var().index()]
        };
        Ok((learnt, bt_level))
    }

    fn cancel_until(&mut self, lvl: u32) {
        if self.decision_level() <= lvl {
            return;
        }
        let bound = self.trail_lim[lvl as usize];
        for i in (bound..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var().index();
            self.polarity[v] = l.is_positive();
            self.assigns[v] = LBool::Undef;
            self.reason[v] = Reason::None;
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(lvl as usize);
        self.qhead = self.trail.len();
        self.order_dirty = true;
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        if self.order_dirty {
            let act = &self.activity;
            // total_cmp: activities are never NaN, but a total order keeps
            // this panic-free and the tie-break deterministic.
            self.order
                .sort_by(|a, b| act[b.index()].total_cmp(&act[a.index()]));
            self.order_dirty = false;
        }
        for &v in &self.order {
            // Zero-occurrence variables are don't-cares: nothing live
            // mentions them, so deciding them can neither satisfy nor
            // falsify a clause. Skipping them keeps the model *partial*
            // over retired frames' variables — once every occurring
            // variable is assigned and propagation is at fixpoint with no
            // conflict, every live clause is satisfied.
            if self.assigns[v.index()] == LBool::Undef && self.occ[v.index()] > 0 {
                return Some(Lit::new(v, self.polarity[v.index()]));
            }
        }
        None
    }

    /// Whether a clause contains a literal true at the root level — such a
    /// clause is permanently satisfied and can never propagate again. The
    /// typical source is a retired frame selector: retiring assigns `¬sel`
    /// at the root, so anything still mentioning `¬sel` positively is dead
    /// weight (clauses *mentioning the variable* are deleted eagerly by
    /// [`Self::retract`]; this catches clauses rooted on other
    /// root-assigned facts, e.g. theory blocking units).
    fn root_satisfied(&self, cr: ClauseRef) -> bool {
        self.clauses[cr]
            .lits
            .iter()
            .any(|&l| self.value_lit(l) == LBool::True && self.level[l.var().index()] == 0)
    }

    /// Learnt-database reduction, retract-aware: root-satisfied learnts are
    /// evicted unconditionally first (they are dead, not merely cold), then
    /// the lowest-activity half of the remaining non-binary learnts goes.
    fn reduce_db(&mut self) {
        self.stats.reduce_dbs += 1;
        let mut learnts: Vec<ClauseRef> = Vec::new();
        for cr in 0..self.clauses.len() {
            if !self.clauses[cr].learnt || self.clauses[cr].lits.is_empty() || self.is_reason(cr) {
                continue;
            }
            if self.root_satisfied(cr) {
                self.detach_clause(cr);
                self.stats.learnts_evicted += 1;
            } else if self.clauses[cr].lits.len() > 2 {
                learnts.push(cr);
            }
        }
        learnts.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .total_cmp(&self.clauses[b].activity)
        });
        let to_remove = learnts.len() / 2;
        for cr in learnts.into_iter().take(to_remove) {
            self.detach_clause(cr);
            self.stats.learnts_evicted += 1;
        }
    }

    fn is_reason(&self, cr: ClauseRef) -> bool {
        if self.clauses[cr].lits.is_empty() {
            return false;
        }
        let l0 = self.clauses[cr].lits[0];
        self.reason[l0.var().index()] == Reason::Clause(cr) && self.value_lit(l0) == LBool::True
    }

    /// Solves under assumptions. Learned clauses persist across calls.
    ///
    /// `Err` means the query could not be decided at all: the clause
    /// database is malformed (see [`Self::add_clause`]) or an internal
    /// invariant broke mid-search. This is distinct from `Unsat`.
    pub fn solve(&mut self, assumptions: &[Lit]) -> Result<SatOutcome, SolverError> {
        self.solve_with(assumptions, None)
    }

    /// [`Self::solve`] with an optional [`TheoryPropagator`].
    ///
    /// When `prop` is `Some`, the propagator is consulted at the search
    /// root: unit propagation at a fixpoint, all assumptions placed, and
    /// no decisions taken (see [`TheoryPropagator`] for why not deeper).
    /// Implied literals it returns are enqueued with a lazy theory reason
    /// (`Reason::Theory`); the reason clause is only materialized (via
    /// [`TheoryPropagator::explain`]) if conflict analysis resolves on the
    /// literal.
    pub fn solve_with(
        &mut self,
        assumptions: &[Lit],
        mut prop: Option<&mut dyn TheoryPropagator>,
    ) -> Result<SatOutcome, SolverError> {
        if let Some(e) = self.invalid {
            return Err(e);
        }
        if assumptions
            .iter()
            .any(|l| l.var().index() >= self.assigns.len())
        {
            return Err(SolverError::InvalidClause(
                "assumption references an unallocated variable",
            ));
        }
        self.cancel_until(0);
        if !self.ok {
            return Ok(SatOutcome::Unsat);
        }
        if self.propagate().is_some() {
            self.ok = false;
            return Ok(SatOutcome::Unsat);
        }

        let mut conflicts_since_restart = 0u64;
        let mut restart_idx = 0u64;
        let mut restart_budget = 64 * luby(restart_idx);

        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Ok(SatOutcome::Unsat);
                }
                // Standard CDCL: backjump and learn. If the learnt clause
                // falsifies an assumption, the decision loop below will see
                // the assumption valued `False` when re-placing it and
                // report unsatisfiability.
                let (learnt, bt) = self.analyze(confl, &mut prop)?;
                self.cancel_until(bt);
                self.learn(learnt);
                self.var_inc *= VAR_DECAY;
                self.cla_inc *= CLA_DECAY;
                if self.stats().learnts > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts += self.max_learnts / 10;
                }
                if conflicts_since_restart >= restart_budget {
                    self.stats.restarts += 1;
                    restart_idx += 1;
                    restart_budget = 64 * luby(restart_idx);
                    conflicts_since_restart = 0;
                    self.cancel_until(0);
                }
            } else {
                // Place assumptions as pseudo-decisions first.
                let dl = self.decision_level() as usize;
                if dl < assumptions.len() {
                    let a = assumptions[dl];
                    match self.value_lit(a) {
                        LBool::True => {
                            // Already implied; open a dummy level to keep the
                            // level↔assumption-index correspondence.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => return Ok(SatOutcome::Unsat),
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(a, Reason::None);
                        }
                    }
                    continue;
                }
                // Theory propagation: with unit propagation at a fixpoint
                // and every assumption placed, ask the theory for bound
                // consequences of the current assignment before branching.
                // Each implied literal is enqueued with a lazy reason; the
                // `continue` re-enters unit propagation, so the loop
                // terminates because every round either assigns at least
                // one new literal or falls through to `pick_branch`.
                //
                // Consultation is restricted to the *search root* (no
                // decisions on the trail, only assumptions): a consult
                // re-asserts every asserted atom into the tableau and
                // scans the whole candidate registry, so running it after
                // every decision's fixpoint costs O(atoms) per decision
                // and dominates wall time. At the root it fires once per
                // solve (plus once per backjump past the assumption
                // boundary), which is where the payoff lives anyway: the
                // consequences of unit-asserted facts reach the trail
                // before any search happens above them.
                if dl == assumptions.len() {
                    if let Some(p) = prop.as_deref_mut() {
                        let implied = p.propagate(&*self)?;
                        let mut enqueued = false;
                        for l in implied {
                            if l.var().index() >= self.assigns.len() {
                                return Err(SolverError::Internal(
                                    "theory propagator implied an unallocated variable",
                                ));
                            }
                            if self.value_lit(l) == LBool::Undef {
                                self.stats.theory_propagations += 1;
                                self.unchecked_enqueue(l, Reason::Theory);
                                enqueued = true;
                            }
                        }
                        if enqueued {
                            continue;
                        }
                    }
                }
                match self.pick_branch() {
                    None => return Ok(SatOutcome::Sat),
                    Some(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(l, Reason::None);
                    }
                }
            }
        }
    }

    fn learn(&mut self, learnt: Vec<Lit>) {
        if learnt.len() == 1 {
            if self.value_lit(learnt[0]) == LBool::Undef {
                self.unchecked_enqueue(learnt[0], Reason::None);
            } else if self.value_lit(learnt[0]) == LBool::False && self.decision_level() == 0 {
                self.ok = false;
            }
        } else {
            let asserting = learnt[0];
            let cr = self.attach_clause(learnt, true);
            self.cla_bump(cr);
            if self.value_lit(asserting) == LBool::Undef {
                self.unchecked_enqueue(asserting, Reason::Clause(cr));
            }
        }
    }
}

/// The Luby restart sequence: 1,1,2,1,1,2,4,... (MiniSat's algorithm,
/// 0-based index).
fn luby(x: u64) -> u64 {
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut x = x;
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &mut SatSolver, vars: &mut Vec<SatVar>, idx: usize, pos: bool) -> Lit {
        while vars.len() <= idx {
            vars.push(s.new_var());
        }
        Lit::new(vars[idx], pos)
    }

    #[test]
    fn luby_sequence() {
        let seq: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn lit_encoding() {
        let v = SatVar(3);
        let p = Lit::new(v, true);
        assert!(p.is_positive());
        assert_eq!(p.var(), v);
        assert!(!(!p).is_positive());
        assert_eq!(!!p, p);
    }

    #[test]
    fn trivial_sat() {
        let mut s = SatSolver::new();
        let v = s.new_var();
        s.add_clause(&[Lit::new(v, true)]);
        assert_eq!(s.solve(&[]).unwrap(), SatOutcome::Sat);
        assert!(s.model_value(v));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = SatSolver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[Lit::new(v, true)]));
        assert!(!s.add_clause(&[Lit::new(v, false)]));
        assert_eq!(s.solve(&[]).unwrap(), SatOutcome::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = SatSolver::new();
        assert_eq!(s.solve(&[]).unwrap(), SatOutcome::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = SatSolver::new();
        let mut vs = Vec::new();
        let a = lit(&mut s, &mut vs, 0, true);
        let b = lit(&mut s, &mut vs, 1, true);
        let c = lit(&mut s, &mut vs, 2, true);
        s.add_clause(&[a]);
        s.add_clause(&[!a, b]);
        s.add_clause(&[!b, c]);
        assert_eq!(s.solve(&[]).unwrap(), SatOutcome::Sat);
        assert!(s.model_value(vs[0]));
        assert!(s.model_value(vs[1]));
        assert!(s.model_value(vs[2]));
    }

    #[test]
    fn pigeonhole_2_into_1_unsat() {
        // Two pigeons, one hole: p1h1, p2h1, at-most-one.
        let mut s = SatSolver::new();
        let p1 = s.new_var();
        let p2 = s.new_var();
        s.add_clause(&[Lit::new(p1, true)]);
        s.add_clause(&[Lit::new(p2, true)]);
        s.add_clause(&[Lit::new(p1, false), Lit::new(p2, false)]);
        assert_eq!(s.solve(&[]).unwrap(), SatOutcome::Unsat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // pigeonhole indices are clearest
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons into 2 holes, requires real conflict analysis.
        let mut s = SatSolver::new();
        let mut x = [[SatVar(0); 2]; 3];
        for p in 0..3 {
            for h in 0..2 {
                x[p][h] = s.new_var();
            }
        }
        for p in 0..3 {
            s.add_clause(&[Lit::new(x[p][0], true), Lit::new(x[p][1], true)]);
        }
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    s.add_clause(&[Lit::new(x[p1][h], false), Lit::new(x[p2][h], false)]);
                }
            }
        }
        assert_eq!(s.solve(&[]).unwrap(), SatOutcome::Unsat);
    }

    #[test]
    fn assumptions_flip_outcome() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::new(a, true), Lit::new(b, true)]);
        assert_eq!(s.solve(&[Lit::new(a, false)]).unwrap(), SatOutcome::Sat);
        assert!(s.model_value(b));
        assert_eq!(
            s.solve(&[Lit::new(a, false), Lit::new(b, false)]).unwrap(),
            SatOutcome::Unsat
        );
        // Solver remains usable after an unsat-under-assumptions call.
        assert_eq!(s.solve(&[]).unwrap(), SatOutcome::Sat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::new(a, true), Lit::new(b, true)]);
        assert_eq!(s.solve(&[]).unwrap(), SatOutcome::Sat);
        s.add_clause(&[Lit::new(a, false)]);
        assert_eq!(s.solve(&[]).unwrap(), SatOutcome::Sat);
        assert!(s.model_value(b));
        s.add_clause(&[Lit::new(b, false)]);
        assert_eq!(s.solve(&[]).unwrap(), SatOutcome::Unsat);
    }

    #[test]
    fn retract_restores_clause_db_size() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::new(a, true), Lit::new(b, true)]);
        let before = s.num_live_clauses();
        // A "frame": guarded clauses over a fresh selector, contradicting
        // the base clause under the assumption that the selector holds.
        let sel = s.new_var();
        s.add_clause(&[Lit::new(sel, false), Lit::new(a, false)]);
        s.add_clause(&[Lit::new(sel, false), Lit::new(b, false)]);
        assert_eq!(s.solve(&[Lit::new(sel, true)]).unwrap(), SatOutcome::Unsat);
        s.retract(sel);
        assert_eq!(s.num_live_clauses(), before);
        assert_eq!(s.solve(&[]).unwrap(), SatOutcome::Sat);
    }

    #[test]
    fn retract_deletes_tagged_learnt_clauses() {
        // Force real conflict-driven learning through guarded clauses, then
        // retract: no learnt clause derived through the frame may survive.
        let mut s = SatSolver::new();
        let mut x = [[SatVar(0); 2]; 3];
        for p in &mut x {
            for h in p.iter_mut() {
                *h = s.new_var();
            }
        }
        for p in &x {
            s.add_clause(&[Lit::new(p[0], true), Lit::new(p[1], true)]);
        }
        let base = s.num_live_clauses();
        let sel = s.new_var();
        // Guarded at-most-one-per-hole: pigeonhole 3-into-2 under `sel`.
        for h in 0..2 {
            for (i, p1) in x.iter().enumerate() {
                for p2 in &x[i + 1..] {
                    s.add_clause(&[
                        Lit::new(sel, false),
                        Lit::new(p1[h], false),
                        Lit::new(p2[h], false),
                    ]);
                }
            }
        }
        assert_eq!(s.solve(&[Lit::new(sel, true)]).unwrap(), SatOutcome::Unsat);
        s.retract(sel);
        assert_eq!(
            s.num_live_clauses(),
            base,
            "frame or tagged learnt survived"
        );
        assert_eq!(s.solve(&[]).unwrap(), SatOutcome::Sat);
        assert_eq!(s.stats().learnts, 0);
    }

    #[test]
    fn retract_is_reusable_across_many_frames() {
        // The clause DB must not grow with the number of retracted frames.
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::new(a, true), Lit::new(b, true)]);
        let base = s.num_live_clauses();
        for round in 0..50 {
            let sel = s.new_var();
            s.add_clause(&[Lit::new(sel, false), Lit::new(a, round % 2 == 0)]);
            assert_eq!(s.solve(&[Lit::new(sel, true)]).unwrap(), SatOutcome::Sat);
            s.retract(sel);
            assert_eq!(s.num_live_clauses(), base, "round {round}");
        }
        assert_eq!(s.solve(&[]).unwrap(), SatOutcome::Sat);
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        // Deterministic LCG so the test is reproducible.
        let mut state: u64 = 0xdeadbeef;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for round in 0..40 {
            let n = 6;
            let m = 3 + (round % 20);
            let mut cls: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..m {
                let mut c = Vec::new();
                for _ in 0..3 {
                    c.push(((next() as usize) % n, next() % 2 == 0));
                }
                cls.push(c);
            }
            // Brute force.
            let mut bf_sat = false;
            'assign: for mask in 0u32..(1 << n) {
                for c in &cls {
                    let ok = c.iter().any(|&(v, pos)| ((mask >> v) & 1 == 1) == pos);
                    if !ok {
                        continue 'assign;
                    }
                }
                bf_sat = true;
                break;
            }
            // CDCL.
            let mut s = SatSolver::new();
            let vars: Vec<SatVar> = (0..n).map(|_| s.new_var()).collect();
            for c in &cls {
                let lits: Vec<Lit> = c.iter().map(|&(v, pos)| Lit::new(vars[v], pos)).collect();
                s.add_clause(&lits);
            }
            let got = s.solve(&[]).unwrap() == SatOutcome::Sat;
            assert_eq!(got, bf_sat, "round {round} disagreed");
            if got {
                // Verify the model actually satisfies every clause.
                for c in &cls {
                    assert!(c.iter().any(|&(v, pos)| s.model_value(vars[v]) == pos));
                }
            }
        }
    }
}
