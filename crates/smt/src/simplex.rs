//! Exact-rational general simplex with variable bounds.
//!
//! This is the theory workhorse behind the LIA solver, following the design
//! of Dutertre & de Moura, *A Fast Linear-Arithmetic Solver for DPLL(T)*
//! (CAV'06):
//!
//! * every asserted atom `Σ cᵢ·xᵢ ≤ b` becomes an **upper bound on a slack
//!   variable** `s = Σ cᵢ·xᵢ`,
//! * the tableau expresses *basic* variables as linear combinations of
//!   *nonbasic* ones, and the current assignment `β` always satisfies the
//!   tableau equations and all bounds of nonbasic variables,
//! * `check()` repairs bound violations of basic variables by pivoting
//!   (Bland's rule, guaranteeing termination),
//! * on infeasibility it returns a **bound certificate**: the set of
//!   [`BoundTag`]s whose bounds are jointly unsatisfiable — this becomes the
//!   conflict clause learned by the SAT core,
//! * bound assertions are recorded on a trail so branch-and-bound can
//!   snapshot and undo them cheaply (relaxing bounds never invalidates `β`).

use std::collections::BTreeMap;

use crate::error::SolverError;
use crate::rational::Rational;

/// Opaque label attached to a bound so infeasibility certificates can be
/// mapped back to asserted atoms. Tags are chosen by the caller; the simplex
/// only collects them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BoundTag(pub u32);

/// A simplex variable index (original or slack).
pub type SVar = usize;

#[derive(Clone, Copy, Debug)]
struct Bound {
    value: Rational,
    tag: BoundTag,
}

#[derive(Clone, Debug)]
enum TrailEntry {
    Lower(SVar, Option<Bound>),
    Upper(SVar, Option<Bound>),
}

/// The result of a feasibility check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Feasibility {
    /// The current bounds are satisfiable; `β` is a witness.
    Feasible,
    /// The bounds identified by the returned tags are jointly unsatisfiable.
    Infeasible(Vec<BoundTag>),
}

/// Exact-rational simplex over bounded variables.
pub struct Simplex {
    /// `rows[r]` expresses basic variable `row_basic[r]` as a combination of
    /// nonbasic variables.
    rows: Vec<BTreeMap<SVar, Rational>>,
    row_basic: Vec<SVar>,
    /// `basic_row[v] = Some(r)` iff `v` is basic in row `r`.
    basic_row: Vec<Option<usize>>,
    lower: Vec<Option<Bound>>,
    upper: Vec<Option<Bound>>,
    value: Vec<Rational>,
    trail: Vec<TrailEntry>,
    /// Statistics: number of pivots performed.
    pub pivots: u64,
}

impl Default for Simplex {
    fn default() -> Self {
        Self::new()
    }
}

impl Simplex {
    /// Creates an empty tableau.
    pub fn new() -> Simplex {
        Simplex {
            rows: Vec::new(),
            row_basic: Vec::new(),
            basic_row: Vec::new(),
            lower: Vec::new(),
            upper: Vec::new(),
            value: Vec::new(),
            trail: Vec::new(),
            pivots: 0,
        }
    }

    /// Number of variables (original + slack).
    pub fn num_vars(&self) -> usize {
        self.value.len()
    }

    /// Number of slack rows in the tableau.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Adds a fresh unbounded nonbasic variable with `β = 0`.
    pub fn add_var(&mut self) -> SVar {
        let v = self.value.len();
        self.basic_row.push(None);
        self.lower.push(None);
        self.upper.push(None);
        self.value.push(Rational::ZERO);
        v
    }

    /// Adds a slack variable `s = Σ coeff·var` and returns `s`. The slack
    /// starts *basic* with `β[s]` consistent with the tableau.
    ///
    /// `Err` if `expr` is empty or mentions an unknown variable — reported
    /// instead of panicking because rows are now interned lazily on the
    /// decode path (see `TheorySession` in the theory module).
    pub fn add_row(&mut self, expr: &[(SVar, Rational)]) -> Result<SVar, SolverError> {
        if expr.is_empty() {
            return Err(SolverError::Internal("empty slack row"));
        }
        if expr.iter().any(|&(v, _)| v >= self.value.len()) {
            return Err(SolverError::Internal("row references unknown variable"));
        }
        let s = self.add_var();
        // Substitute any basic variables by their row definitions so the row
        // is expressed over nonbasic variables only.
        let mut combo: BTreeMap<SVar, Rational> = BTreeMap::new();
        for &(v, c) in expr {
            if c.is_zero() {
                continue;
            }
            match self.basic_row[v] {
                Some(r) => {
                    let def = self.rows[r].clone();
                    for (&u, &d) in &def {
                        add_coeff(&mut combo, u, c * d);
                    }
                }
                None => add_coeff(&mut combo, v, c),
            }
        }
        let beta: Rational = combo
            .iter()
            .fold(Rational::ZERO, |acc, (&u, &c)| acc + c * self.value[u]);
        self.value[s] = beta;
        let r = self.rows.len();
        self.rows.push(combo);
        self.row_basic.push(s);
        self.basic_row[s] = Some(r);
        Ok(s)
    }

    /// Current value of a variable.
    pub fn value_of(&self, v: SVar) -> Rational {
        self.value[v]
    }

    /// The asserted lower bound of `v` (value and asserting tag), if any.
    ///
    /// Used by theory propagation to test bound subsumption without
    /// touching the tableau; the tag identifies the asserting atom for
    /// explanation generation. Returns `None` for unbounded or unallocated
    /// variables.
    pub fn lower_bound(&self, v: SVar) -> Option<(Rational, BoundTag)> {
        self.lower
            .get(v)
            .copied()
            .flatten()
            .map(|b| (b.value, b.tag))
    }

    /// The asserted upper bound of `v` (value and asserting tag), if any.
    ///
    /// Counterpart of [`Self::lower_bound`].
    pub fn upper_bound(&self, v: SVar) -> Option<(Rational, BoundTag)> {
        self.upper
            .get(v)
            .copied()
            .flatten()
            .map(|b| (b.value, b.tag))
    }

    /// A snapshot token for [`Self::undo_to`].
    pub fn snapshot(&self) -> usize {
        self.trail.len()
    }

    /// Undoes all bound assertions made after `snap`. The assignment `β`
    /// remains valid because relaxing bounds cannot violate them.
    pub fn undo_to(&mut self, snap: usize) {
        while self.trail.len() > snap {
            match self.trail.pop() {
                Some(TrailEntry::Lower(v, old)) => self.lower[v] = old,
                Some(TrailEntry::Upper(v, old)) => self.upper[v] = old,
                None => return,
            }
        }
    }

    /// Asserts `v ≥ b`. Returns an immediate certificate if this contradicts
    /// the current upper bound of `v`.
    pub fn assert_lower(
        &mut self,
        v: SVar,
        b: Rational,
        tag: BoundTag,
    ) -> Result<(), Vec<BoundTag>> {
        if let Some(lo) = self.lower[v] {
            if b <= lo.value {
                return Ok(()); // no tightening
            }
        }
        if let Some(up) = self.upper[v] {
            if b > up.value {
                return Err(vec![tag, up.tag]);
            }
        }
        self.trail.push(TrailEntry::Lower(v, self.lower[v]));
        self.lower[v] = Some(Bound { value: b, tag });
        if self.basic_row[v].is_none() && self.value[v] < b {
            self.update_nonbasic(v, b);
        }
        Ok(())
    }

    /// Asserts `v ≤ b`. Returns an immediate certificate if this contradicts
    /// the current lower bound of `v`.
    pub fn assert_upper(
        &mut self,
        v: SVar,
        b: Rational,
        tag: BoundTag,
    ) -> Result<(), Vec<BoundTag>> {
        if let Some(up) = self.upper[v] {
            if b >= up.value {
                return Ok(());
            }
        }
        if let Some(lo) = self.lower[v] {
            if b < lo.value {
                return Err(vec![tag, lo.tag]);
            }
        }
        self.trail.push(TrailEntry::Upper(v, self.upper[v]));
        self.upper[v] = Some(Bound { value: b, tag });
        if self.basic_row[v].is_none() && self.value[v] > b {
            self.update_nonbasic(v, b);
        }
        Ok(())
    }

    /// Sets a nonbasic variable to `b` and updates dependent basic values.
    fn update_nonbasic(&mut self, v: SVar, b: Rational) {
        let delta = b - self.value[v];
        if delta.is_zero() {
            return;
        }
        for r in 0..self.rows.len() {
            if let Some(&c) = self.rows[r].get(&v) {
                let xb = self.row_basic[r];
                self.value[xb] += c * delta;
            }
        }
        self.value[v] = b;
    }

    /// Restores feasibility by pivoting, or reports an infeasible bound set.
    ///
    /// `Err` signals a broken tableau invariant (a pivot column vanished
    /// from its row), which cannot happen for tableaus built through
    /// [`Self::add_row`]; it is reported instead of panicking because this
    /// sits on the decode path.
    pub fn check(&mut self) -> Result<Feasibility, SolverError> {
        loop {
            // Bland's rule: smallest violating basic variable.
            let mut candidate: Option<(usize, SVar, bool, Rational, BoundTag)> = None;
            for r in 0..self.rows.len() {
                let xb = self.row_basic[r];
                let found = if let Some(b) = self.violated_lower(xb) {
                    Some((r, xb, true, b.value, b.tag))
                } else {
                    self.violated_upper(xb)
                        .map(|b| (r, xb, false, b.value, b.tag))
                };
                if let Some(c) = found {
                    if candidate.is_none_or(|(_, v, ..)| c.1 < v) {
                        candidate = Some(c);
                    }
                }
            }
            let Some((r, _xb, need_increase, target, btag)) = candidate else {
                return Ok(Feasibility::Feasible);
            };

            // Find the smallest nonbasic variable that can move β[xb]
            // toward `target`. (Row iteration is ascending by var index.)
            let row: Vec<(SVar, Rational)> = self.rows[r].iter().map(|(&u, &c)| (u, c)).collect();
            let mut pivot: Option<SVar> = None;
            for &(xn, c) in &row {
                let can_move = if need_increase {
                    (c.is_positive() && self.can_increase(xn))
                        || (c.is_negative() && self.can_decrease(xn))
                } else {
                    (c.is_positive() && self.can_decrease(xn))
                        || (c.is_negative() && self.can_increase(xn))
                };
                if can_move {
                    pivot = Some(xn);
                    break;
                }
            }

            match pivot {
                Some(xn) => self.pivot_and_update(r, xn, target)?,
                None => {
                    // Certificate: the violated bound of xb plus, for every
                    // nonbasic in the row, the bound that blocks movement.
                    let mut core = vec![btag];
                    for &(xn, c) in &row {
                        let blocking = if need_increase == c.is_positive() {
                            self.upper[xn]
                        } else {
                            self.lower[xn]
                        };
                        if let Some(b) = blocking {
                            core.push(b.tag);
                        }
                    }
                    core.sort_unstable();
                    core.dedup();
                    return Ok(Feasibility::Infeasible(core));
                }
            }
        }
    }

    fn violated_lower(&self, v: SVar) -> Option<Bound> {
        self.lower[v].filter(|b| self.value[v] < b.value)
    }

    fn violated_upper(&self, v: SVar) -> Option<Bound> {
        self.upper[v].filter(|b| self.value[v] > b.value)
    }

    fn can_increase(&self, v: SVar) -> bool {
        match self.upper[v] {
            Some(b) => self.value[v] < b.value,
            None => true,
        }
    }

    fn can_decrease(&self, v: SVar) -> bool {
        match self.lower[v] {
            Some(b) => self.value[v] > b.value,
            None => true,
        }
    }

    /// Pivots the basic variable of row `r` with nonbasic `xn`, then sets the
    /// old basic variable's value to `target`.
    fn pivot_and_update(
        &mut self,
        r: usize,
        xn: SVar,
        target: Rational,
    ) -> Result<(), SolverError> {
        self.pivots += 1;
        let xb = self.row_basic[r];
        let a = match self.rows[r].get(&xn) {
            Some(&a) => a,
            None => return Err(SolverError::Internal("pivot coefficient missing from row")),
        };
        debug_assert!(!a.is_zero());

        // θ = (target − β[xb]) / a ; new β[xn] = β[xn] + θ.
        let theta = (target - self.value[xb]) / a;
        self.value[xb] = target;
        self.value[xn] += theta;

        // Rewrite row r to define xn:  xn = (xb − Σ_{u≠xn} c_u·u) / a.
        let old_row = std::mem::take(&mut self.rows[r]);
        let mut new_row: BTreeMap<SVar, Rational> = BTreeMap::new();
        let inv_a = a.recip();
        new_row.insert(xb, inv_a);
        for (&u, &c) in &old_row {
            if u != xn {
                add_coeff(&mut new_row, u, -c * inv_a);
            }
        }
        self.rows[r] = new_row.clone();
        self.row_basic[r] = xn;
        self.basic_row[xb] = None;
        self.basic_row[xn] = Some(r);

        // Substitute xn in all other rows, then refresh β of their basics.
        for r2 in 0..self.rows.len() {
            if r2 == r {
                continue;
            }
            if let Some(c) = self.rows[r2].remove(&xn) {
                let addend: Vec<(SVar, Rational)> =
                    new_row.iter().map(|(&u, &d)| (u, c * d)).collect();
                for (u, cd) in addend {
                    add_coeff(&mut self.rows[r2], u, cd);
                }
            }
            let xb2 = self.row_basic[r2];
            let val: Rational = self.rows[r2]
                .iter()
                .fold(Rational::ZERO, |acc, (&u, &c)| acc + c * self.value[u]);
            self.value[xb2] = val;
        }
        Ok(())
    }

    /// Debug invariant: every row equation holds under `β` and every
    /// *nonbasic* variable respects its bounds.
    #[cfg(test)]
    fn check_invariants(&self) {
        for r in 0..self.rows.len() {
            let xb = self.row_basic[r];
            let rhs: Rational = self.rows[r]
                .iter()
                .fold(Rational::ZERO, |acc, (&u, &c)| acc + c * self.value[u]);
            assert_eq!(self.value[xb], rhs, "row {r} equation violated");
        }
        for v in 0..self.num_vars() {
            if self.basic_row[v].is_none() {
                if let Some(b) = self.lower[v] {
                    assert!(self.value[v] >= b.value, "nonbasic {v} below lower bound");
                }
                if let Some(b) = self.upper[v] {
                    assert!(self.value[v] <= b.value, "nonbasic {v} above upper bound");
                }
            }
        }
    }
}

fn add_coeff(map: &mut BTreeMap<SVar, Rational>, v: SVar, c: Rational) {
    if c.is_zero() {
        return;
    }
    let entry = map.entry(v).or_insert(Rational::ZERO);
    *entry += c;
    if entry.is_zero() {
        map.remove(&v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn simple_feasible_system() {
        // x + y <= 10, x >= 3, y >= 4  — feasible.
        let mut s = Simplex::new();
        let x = s.add_var();
        let y = s.add_var();
        let sum = s.add_row(&[(x, r(1)), (y, r(1))]).unwrap();
        s.assert_upper(sum, r(10), BoundTag(0)).unwrap();
        s.assert_lower(x, r(3), BoundTag(1)).unwrap();
        s.assert_lower(y, r(4), BoundTag(2)).unwrap();
        assert_eq!(s.check().unwrap(), Feasibility::Feasible);
        s.check_invariants();
        assert!(s.value_of(x) >= r(3));
        assert!(s.value_of(y) >= r(4));
        assert!(s.value_of(x) + s.value_of(y) <= r(10));
    }

    #[test]
    fn simple_infeasible_system() {
        // x + y <= 10, x >= 6, y >= 6 — infeasible; certificate must contain
        // all three bounds.
        let mut s = Simplex::new();
        let x = s.add_var();
        let y = s.add_var();
        let sum = s.add_row(&[(x, r(1)), (y, r(1))]).unwrap();
        s.assert_upper(sum, r(10), BoundTag(0)).unwrap();
        s.assert_lower(x, r(6), BoundTag(1)).unwrap();
        s.assert_lower(y, r(6), BoundTag(2)).unwrap();
        match s.check().unwrap() {
            Feasibility::Infeasible(core) => {
                assert_eq!(core, vec![BoundTag(0), BoundTag(1), BoundTag(2)]);
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn immediate_bound_clash() {
        let mut s = Simplex::new();
        let x = s.add_var();
        s.assert_upper(x, r(5), BoundTag(7)).unwrap();
        let err = s.assert_lower(x, r(6), BoundTag(9)).unwrap_err();
        assert!(err.contains(&BoundTag(7)) && err.contains(&BoundTag(9)));
    }

    #[test]
    fn equality_via_two_bounds() {
        // x + 2y = 8 (as <= and >=), y = 3 => x = 2.
        let mut s = Simplex::new();
        let x = s.add_var();
        let y = s.add_var();
        let e = s.add_row(&[(x, r(1)), (y, r(2))]).unwrap();
        s.assert_upper(e, r(8), BoundTag(0)).unwrap();
        s.assert_lower(e, r(8), BoundTag(1)).unwrap();
        s.assert_upper(y, r(3), BoundTag(2)).unwrap();
        s.assert_lower(y, r(3), BoundTag(3)).unwrap();
        assert_eq!(s.check().unwrap(), Feasibility::Feasible);
        s.check_invariants();
        assert_eq!(s.value_of(x), r(2));
        assert_eq!(s.value_of(y), r(3));
    }

    #[test]
    fn snapshot_undo_restores_bounds() {
        let mut s = Simplex::new();
        let x = s.add_var();
        s.assert_lower(x, r(0), BoundTag(0)).unwrap();
        s.assert_upper(x, r(10), BoundTag(1)).unwrap();
        let snap = s.snapshot();
        s.assert_lower(x, r(8), BoundTag(2)).unwrap();
        s.assert_upper(x, r(9), BoundTag(3)).unwrap();
        assert_eq!(s.check().unwrap(), Feasibility::Feasible);
        s.undo_to(snap);
        // The tightened bounds are gone: x = 3 must be allowed again.
        s.assert_upper(x, r(3), BoundTag(4)).unwrap();
        assert_eq!(s.check().unwrap(), Feasibility::Feasible);
        assert!(s.value_of(x) <= r(3));
    }

    #[test]
    fn chained_rows_with_substitution() {
        // s1 = x + y (basic); s2 = s1 + z must substitute s1's definition.
        let mut s = Simplex::new();
        let x = s.add_var();
        let y = s.add_var();
        let z = s.add_var();
        let s1 = s.add_row(&[(x, r(1)), (y, r(1))]).unwrap();
        let s2 = s.add_row(&[(s1, r(1)), (z, r(1))]).unwrap();
        s.assert_lower(s2, r(9), BoundTag(0)).unwrap();
        s.assert_upper(x, r(2), BoundTag(1)).unwrap();
        s.assert_upper(y, r(3), BoundTag(2)).unwrap();
        s.assert_upper(z, r(3), BoundTag(3)).unwrap();
        // max x+y+z = 8 < 9 → infeasible.
        match s.check().unwrap() {
            Feasibility::Infeasible(core) => {
                assert_eq!(core.len(), 4);
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
    }

    #[test]
    fn negative_coefficients() {
        // d = x - y; x <= 4, y >= 1 → d <= 3; asserting d >= 4 infeasible.
        let mut s = Simplex::new();
        let x = s.add_var();
        let y = s.add_var();
        let d = s.add_row(&[(x, r(1)), (y, r(-1))]).unwrap();
        s.assert_upper(x, r(4), BoundTag(0)).unwrap();
        s.assert_lower(y, r(1), BoundTag(1)).unwrap();
        s.assert_lower(d, r(4), BoundTag(2)).unwrap();
        assert!(matches!(s.check().unwrap(), Feasibility::Infeasible(_)));
    }

    #[test]
    fn rational_solutions_allowed() {
        // 2x = 5 → x = 5/2 (LP relaxation allows it; integrality is the
        // theory layer's job).
        let mut s = Simplex::new();
        let x = s.add_var();
        let e = s.add_row(&[(x, r(2))]).unwrap();
        s.assert_lower(e, r(5), BoundTag(0)).unwrap();
        s.assert_upper(e, r(5), BoundTag(1)).unwrap();
        assert_eq!(s.check().unwrap(), Feasibility::Feasible);
        assert_eq!(s.value_of(x), Rational::new(5, 2));
    }

    #[test]
    fn many_vars_sum_constraint() {
        // The paper's R1+R2: 0 <= I_t <= 60 for t<5, sum = 100.
        let mut s = Simplex::new();
        let vars: Vec<SVar> = (0..5).map(|_| s.add_var()).collect();
        for (i, &v) in vars.iter().enumerate() {
            s.assert_lower(v, r(0), BoundTag(100 + i as u32)).unwrap();
            s.assert_upper(v, r(60), BoundTag(200 + i as u32)).unwrap();
        }
        let coeffs: Vec<(SVar, Rational)> = vars.iter().map(|&v| (v, r(1))).collect();
        let total = s.add_row(&coeffs).unwrap();
        s.assert_lower(total, r(100), BoundTag(0)).unwrap();
        s.assert_upper(total, r(100), BoundTag(1)).unwrap();
        assert_eq!(s.check().unwrap(), Feasibility::Feasible);
        s.check_invariants();
        let sum: Rational = vars.iter().fold(Rational::ZERO, |a, &v| a + s.value_of(v));
        assert_eq!(sum, r(100));

        // Pin I_0..I_2 to 20,15,25 (partial instantiation as in Fig. 1b):
        // with I_4 <= 60, requiring I_3 >= 41 is infeasible (sum would
        // exceed 100 with I_4 >= 0 forced to -1), while I_3 <= 40 is fine.
        for (i, val) in [(0usize, 20i64), (1, 15), (2, 25)] {
            s.assert_lower(vars[i], r(val), BoundTag(300 + i as u32))
                .unwrap();
            s.assert_upper(vars[i], r(val), BoundTag(400 + i as u32))
                .unwrap();
        }
        let snap = s.snapshot();
        s.assert_lower(vars[3], r(41), BoundTag(500)).unwrap();
        assert!(matches!(s.check().unwrap(), Feasibility::Infeasible(_)));
        s.undo_to(snap);
        s.assert_lower(vars[3], r(40), BoundTag(501)).unwrap();
        assert_eq!(s.check().unwrap(), Feasibility::Feasible);
    }
}
