//! The linear-integer-arithmetic theory solver.
//!
//! Given a conjunction of [`LinAtom`]s (each tagged with the index of the
//! asserting literal), this module decides satisfiability over the *integers*:
//!
//! 1. build a [`Simplex`] tableau — declared variable bounds get sentinel
//!    tags, each atom becomes a bound on a (shared) slack row,
//! 2. check rational feasibility; an infeasible bound certificate maps back
//!    to a small **core** of atom indices,
//! 3. if rationally feasible, run **branch-and-bound** on integer variables
//!    with fractional values. Cores from the two branches are merged (branch
//!    bounds stripped), which is sound: any integer assignment satisfies one
//!    of the two branch bounds, so it would have to satisfy one full branch
//!    core.
//!
//! Because every problem variable carries finite declared bounds, the
//! branch-and-bound tree is finite; a node budget additionally caps runaway
//! searches and surfaces as [`TheoryVerdict::Unknown`].

use std::collections::BTreeMap;

use crate::error::SolverError;
use crate::linear::LinAtom;
use crate::rational::Rational;
use crate::simplex::{BoundTag, Feasibility, SVar, Simplex};
use crate::term::{Sort, TermPool, VarId};

/// Sentinel base for declared-bound tags (always-true, filtered from cores).
const DECL_BASE: u32 = 1 << 30;
/// Sentinel for branch-and-bound bounds (stripped during core merging).
const BRANCH_TAG: u32 = u32::MAX;

/// The verdict of a theory check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TheoryVerdict {
    /// Satisfiable; integer values for every declared integer variable.
    /// Kept in a `BTreeMap` so model iteration order is deterministic.
    Sat(BTreeMap<VarId, i64>),
    /// Unsatisfiable; indices (into the checked atom slice) of a conflicting
    /// subset. May be empty if the declared bounds alone are inconsistent.
    Unsat(Vec<usize>),
    /// The node budget was exhausted before a decision was reached.
    Unknown,
}

/// Configuration for the theory check.
#[derive(Clone, Copy, Debug)]
pub struct TheoryConfig {
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: u64,
}

impl Default for TheoryConfig {
    fn default() -> Self {
        TheoryConfig { max_nodes: 50_000 }
    }
}

/// Checks the conjunction of `atoms` over the integers, respecting the
/// declared bounds of every integer variable in `pool`.
///
/// `Err` means the atoms could not even be translated (arithmetic overflow,
/// a reference to an undeclared variable, or a broken simplex invariant) —
/// distinct from [`TheoryVerdict::Unknown`], which is a budget exhaustion.
pub fn check_conjunction(
    pool: &TermPool,
    atoms: &[LinAtom],
    config: TheoryConfig,
) -> Result<TheoryVerdict, SolverError> {
    let mut sx = Simplex::new();

    // One simplex variable per declared integer variable (in VarId order so
    // indexing is direct).
    let mut int_vars: Vec<VarId> = Vec::new();
    let mut svar_of: BTreeMap<VarId, SVar> = BTreeMap::new();
    for (idx, info) in pool.vars().iter().enumerate() {
        if info.sort == Sort::Int {
            let v = VarId(idx as u32);
            let sv = sx.add_var();
            svar_of.insert(v, sv);
            int_vars.push(v);
            let tag = BoundTag(DECL_BASE + idx as u32);
            // Declared bounds can never conflict with each other (lo <= hi).
            if sx
                .assert_lower(sv, Rational::from_int(info.lo), tag)
                .is_err()
                || sx
                    .assert_upper(sv, Rational::from_int(info.hi), tag)
                    .is_err()
            {
                return Err(SolverError::Internal("declared bounds are inconsistent"));
            }
        }
    }

    // Shared slack rows per coefficient vector.
    let mut slack_of: BTreeMap<Vec<(SVar, Rational)>, SVar> = BTreeMap::new();

    for (i, atom) in atoms.iter().enumerate() {
        let tag = BoundTag(i as u32);
        // Σ c·x + k ≤ 0  ⇔  Σ c·x ≤ −k.
        let neg_k = atom
            .expr
            .constant
            .checked_neg()
            .ok_or(SolverError::Overflow("negating atom constant"))?;
        let bound = Rational::from_int(neg_k);
        if atom.expr.is_constant() {
            // k ≤ 0 ?
            if atom.expr.constant > 0 {
                return Ok(TheoryVerdict::Unsat(vec![i]));
            }
            continue;
        }
        let mut coeffs: Vec<(SVar, Rational)> = Vec::with_capacity(atom.expr.coeffs.len());
        for (&v, &c) in &atom.expr.coeffs {
            let sv = *svar_of
                .get(&v)
                .ok_or(SolverError::Internal("atom references undeclared variable"))?;
            coeffs.push((sv, Rational::from_int(c)));
        }
        let result = if coeffs.len() == 1 {
            let (sv, c) = coeffs[0];
            // c·x ≤ bound  ⇔  x ≤ bound/c (c>0)  or  x ≥ bound/c (c<0).
            if c.is_positive() {
                sx.assert_upper(sv, bound / c, tag)
            } else {
                sx.assert_lower(sv, bound / c, tag)
            }
        } else {
            let sv = *slack_of
                .entry(coeffs.clone())
                .or_insert_with(|| sx.add_row(&coeffs));
            sx.assert_upper(sv, bound, tag)
        };
        if let Err(core) = result {
            return Ok(TheoryVerdict::Unsat(filter_core(core)));
        }
    }

    let mut nodes = 0u64;
    match branch_and_bound(&mut sx, &int_vars, &svar_of, &mut nodes, config.max_nodes)? {
        BnB::Sat => {
            let mut model: BTreeMap<VarId, i64> = BTreeMap::new();
            for &v in &int_vars {
                let sv = *svar_of
                    .get(&v)
                    .ok_or(SolverError::Internal("model variable has no simplex slot"))?;
                let val = sx
                    .value_of(sv)
                    .to_i64()
                    .ok_or(SolverError::Internal("non-integral model value"))?;
                model.insert(v, val);
            }
            Ok(TheoryVerdict::Sat(model))
        }
        BnB::Unsat(core) => Ok(TheoryVerdict::Unsat(filter_core(core))),
        BnB::Unknown => Ok(TheoryVerdict::Unknown),
    }
}

enum BnB {
    Sat,
    Unsat(Vec<BoundTag>),
    Unknown,
}

fn branch_and_bound(
    sx: &mut Simplex,
    int_vars: &[VarId],
    svar_of: &BTreeMap<VarId, SVar>,
    nodes: &mut u64,
    max_nodes: u64,
) -> Result<BnB, SolverError> {
    *nodes += 1;
    if *nodes > max_nodes {
        return Ok(BnB::Unknown);
    }
    match sx.check()? {
        Feasibility::Infeasible(core) => return Ok(BnB::Unsat(core)),
        Feasibility::Feasible => {}
    }
    // Find the most fractional integer variable.
    let mut pick: Option<(SVar, Rational)> = None;
    let mut best_frac = Rational::ZERO;
    for v in int_vars {
        let sv = *svar_of
            .get(v)
            .ok_or(SolverError::Internal("branch variable has no simplex slot"))?;
        let val = sx.value_of(sv);
        if !val.is_integer() {
            let fl = Rational::new(val.floor(), 1);
            let frac = val - fl;
            // Distance from 1/2, smaller is more fractional.
            let half = Rational::new(1, 2);
            let dist = if frac > half {
                frac - half
            } else {
                half - frac
            };
            if pick.is_none() || dist < best_frac {
                best_frac = dist;
                pick = Some((sv, val));
            }
        }
    }
    let Some((sv, val)) = pick else {
        return Ok(BnB::Sat); // all integral
    };
    let floor = Rational::new(val.floor(), 1);
    let ceil = Rational::new(val.ceil(), 1);
    let btag = BoundTag(BRANCH_TAG);

    // Branch 1: x ≤ floor.
    let snap = sx.snapshot();
    let down = match sx.assert_upper(sv, floor, btag) {
        Ok(()) => branch_and_bound(sx, int_vars, svar_of, nodes, max_nodes)?,
        Err(core) => BnB::Unsat(core),
    };
    sx.undo_to(snap);
    let down_core = match down {
        BnB::Sat => return Ok(BnB::Sat),
        BnB::Unknown => return Ok(BnB::Unknown),
        BnB::Unsat(c) => c,
    };

    // Branch 2: x ≥ ceil.
    let snap = sx.snapshot();
    let up = match sx.assert_lower(sv, ceil, btag) {
        Ok(()) => branch_and_bound(sx, int_vars, svar_of, nodes, max_nodes)?,
        Err(core) => BnB::Unsat(core),
    };
    sx.undo_to(snap);
    let up_core = match up {
        BnB::Sat => return Ok(BnB::Sat),
        BnB::Unknown => return Ok(BnB::Unknown),
        BnB::Unsat(c) => c,
    };

    // Merge: strip branch tags; any integer point satisfies x ≤ floor or
    // x ≥ ceil, so it falsifies one of the two cores entirely.
    let mut merged: Vec<BoundTag> = down_core
        .into_iter()
        .chain(up_core)
        .filter(|t| t.0 != BRANCH_TAG)
        .collect();
    merged.sort_unstable();
    merged.dedup();
    Ok(BnB::Unsat(merged))
}

/// Keeps only real atom indices (drops declared-bound and branch sentinels).
fn filter_core(core: Vec<BoundTag>) -> Vec<usize> {
    let mut out: Vec<usize> = core
        .into_iter()
        .filter(|t| t.0 < DECL_BASE)
        .map(|t| t.0 as usize)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinExpr;

    fn atom(coeffs: &[(VarId, i64)], constant: i64) -> LinAtom {
        let mut e = LinExpr::constant(constant);
        for &(v, c) in coeffs {
            e.add_term(v, c);
        }
        LinAtom { expr: e }
    }

    fn pool_with_vars(n: usize, lo: i64, hi: i64) -> (TermPool, Vec<VarId>) {
        let mut p = TermPool::new();
        let vs = (0..n)
            .map(|i| p.int_var(&format!("x{i}"), lo, hi))
            .collect();
        (p, vs)
    }

    #[test]
    fn empty_conjunction_is_sat() {
        let (p, vs) = pool_with_vars(2, 0, 10);
        match check_conjunction(&p, &[], TheoryConfig::default()).unwrap() {
            TheoryVerdict::Sat(m) => {
                for v in vs {
                    let val = m[&v];
                    assert!((0..=10).contains(&val));
                }
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn simple_bounds_conflict() {
        let (p, vs) = pool_with_vars(1, 0, 10);
        // x >= 4  and  x <= 3:   (-x + 4 <= 0), (x - 3 <= 0).
        let a1 = atom(&[(vs[0], -1)], 4);
        let a2 = atom(&[(vs[0], 1)], -3);
        match check_conjunction(&p, &[a1, a2], TheoryConfig::default()).unwrap() {
            TheoryVerdict::Unsat(core) => assert_eq!(core, vec![0, 1]),
            other => panic!("expected unsat, got {other:?}"),
        }
    }

    #[test]
    fn declared_bounds_are_respected_and_filtered() {
        let (p, vs) = pool_with_vars(1, 0, 10);
        // x >= 11 conflicts with the declared upper bound only.
        let a = atom(&[(vs[0], -1)], 11);
        match check_conjunction(&p, &[a], TheoryConfig::default()).unwrap() {
            TheoryVerdict::Unsat(core) => assert_eq!(core, vec![0]),
            other => panic!("expected unsat, got {other:?}"),
        }
    }

    #[test]
    fn sum_equality_feasible() {
        let (p, vs) = pool_with_vars(5, 0, 60);
        // sum = 100 via <= and >=.
        let le = atom(&vs.iter().map(|&v| (v, 1)).collect::<Vec<_>>(), -100);
        let ge = atom(&vs.iter().map(|&v| (v, -1)).collect::<Vec<_>>(), 100);
        match check_conjunction(&p, &[le, ge], TheoryConfig::default()).unwrap() {
            TheoryVerdict::Sat(m) => {
                let total: i64 = vs.iter().map(|v| m[v]).sum();
                assert_eq!(total, 100);
                assert!(vs.iter().all(|v| (0..=60).contains(&m[v])));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn integrality_requires_branching() {
        let (p, vs) = pool_with_vars(1, 0, 10);
        // 2x >= 5 and 2x <= 5  → x = 5/2, no integer solution.
        let ge = atom(&[(vs[0], -2)], 5);
        let le = atom(&[(vs[0], 2)], -5);
        match check_conjunction(&p, &[ge, le], TheoryConfig::default()).unwrap() {
            TheoryVerdict::Unsat(core) => {
                assert!(!core.is_empty());
                assert!(core.iter().all(|&i| i < 2));
            }
            other => panic!("expected unsat, got {other:?}"),
        }
    }

    #[test]
    fn integrality_branching_finds_solutions() {
        let (p, vs) = pool_with_vars(2, 0, 10);
        // 2x + 2y = 10 has integer solutions even though the LP relaxation
        // may first land on fractional points; 3x + 3y = 10 does not.
        let a1 = atom(&[(vs[0], 2), (vs[1], 2)], -10);
        let a2 = atom(&[(vs[0], -2), (vs[1], -2)], 10);
        match check_conjunction(&p, &[a1, a2], TheoryConfig::default()).unwrap() {
            TheoryVerdict::Sat(m) => assert_eq!(m[&vs[0]] + m[&vs[1]], 5),
            other => panic!("expected sat, got {other:?}"),
        }
        let b1 = atom(&[(vs[0], 3), (vs[1], 3)], -10);
        let b2 = atom(&[(vs[0], -3), (vs[1], -3)], 10);
        assert!(matches!(
            check_conjunction(&p, &[b1, b2], TheoryConfig::default()).unwrap(),
            TheoryVerdict::Unsat(_)
        ));
    }

    #[test]
    fn trivially_false_constant_atom() {
        let (p, _vs) = pool_with_vars(1, 0, 10);
        // 0·x + 3 <= 0 is false.
        let a = atom(&[], 3);
        match check_conjunction(&p, &[a], TheoryConfig::default()).unwrap() {
            TheoryVerdict::Unsat(core) => assert_eq!(core, vec![0]),
            other => panic!("expected unsat, got {other:?}"),
        }
    }

    #[test]
    fn lookahead_range_shape() {
        // The Fig. 1b scenario: I0..I4 in [0,60], sum=100, I0..I2 fixed to
        // 20,15,25. Then I3 = 41 must be unsat, I3 = 40 sat.
        let (p, vs) = pool_with_vars(5, 0, 60);
        let mut atoms = vec![
            atom(&vs.iter().map(|&v| (v, 1)).collect::<Vec<_>>(), -100),
            atom(&vs.iter().map(|&v| (v, -1)).collect::<Vec<_>>(), 100),
        ];
        for (i, val) in [(0usize, 20i64), (1, 15), (2, 25)] {
            atoms.push(atom(&[(vs[i], 1)], -val));
            atoms.push(atom(&[(vs[i], -1)], val));
        }
        let mut with_41 = atoms.clone();
        with_41.push(atom(&[(vs[3], -1)], 41));
        assert!(matches!(
            check_conjunction(&p, &with_41, TheoryConfig::default()).unwrap(),
            TheoryVerdict::Unsat(_)
        ));
        let mut with_40 = atoms.clone();
        with_40.push(atom(&[(vs[3], -1)], 40));
        assert!(matches!(
            check_conjunction(&p, &with_40, TheoryConfig::default()).unwrap(),
            TheoryVerdict::Sat(_)
        ));
    }

    #[test]
    fn node_budget_surfaces_unknown() {
        let (p, vs) = pool_with_vars(3, 0, 1000);
        // A system needing at least one branch, with a budget of 1 node.
        let a1 = atom(&[(vs[0], 2), (vs[1], 2), (vs[2], 2)], -7);
        let a2 = atom(&[(vs[0], -2), (vs[1], -2), (vs[2], -2)], 7);
        let verdict = check_conjunction(&p, &[a1, a2], TheoryConfig { max_nodes: 1 }).unwrap();
        assert_eq!(verdict, TheoryVerdict::Unknown);
    }
}
