//! The linear-integer-arithmetic theory solver.
//!
//! Given a conjunction of [`LinAtom`]s (each tagged with the index of the
//! asserting literal), this module decides satisfiability over the *integers*:
//!
//! 1. build a [`Simplex`] tableau — declared variable bounds get sentinel
//!    tags, each atom becomes a bound on a (shared) slack row,
//! 2. check rational feasibility; an infeasible bound certificate maps back
//!    to a small **core** of atom indices,
//! 3. if rationally feasible, run **branch-and-bound** on integer variables
//!    with fractional values. Cores from the two branches are merged (branch
//!    bounds stripped), which is sound: any integer assignment satisfies one
//!    of the two branch bounds, so it would have to satisfy one full branch
//!    core.
//!
//! Because every problem variable carries finite declared bounds, the
//! branch-and-bound tree is finite; a node budget additionally caps runaway
//! searches and surfaces as [`TheoryVerdict::Unknown`].
//!
//! # Incrementality
//!
//! [`TheorySession`] keeps one simplex tableau alive across DPLL(T) checks:
//! declared variables are mirrored once (and incrementally as the pool
//! grows), slack rows are interned by normalized coefficient vector and
//! reused forever, and each check only asserts its atoms' *bounds* against
//! the live tableau, then retracts them via the trail — carrying the basis
//! (and the witness point `β`) forward so a check that differs from its
//! predecessor by a few literals resolves in a handful of pivots.
//! [`check_conjunction`] remains as the stateless oracle: a fresh
//! single-check session, equivalent to the historical rebuild-per-check
//! behaviour and used by the warm-start equivalence proptests.

use std::collections::BTreeMap;

use crate::error::SolverError;
use crate::linear::LinAtom;
use crate::rational::Rational;
use crate::simplex::{BoundTag, Feasibility, SVar, Simplex};
use crate::term::{Sort, TermPool, VarId};

/// Sentinel base for declared-bound tags (always-true, filtered from cores).
const DECL_BASE: u32 = 1 << 30;
/// Sentinel for branch-and-bound bounds (stripped during core merging).
const BRANCH_TAG: u32 = u32::MAX;

/// The verdict of a theory check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TheoryVerdict {
    /// Satisfiable; integer values for every declared integer variable.
    /// Kept in a `BTreeMap` so model iteration order is deterministic.
    Sat(BTreeMap<VarId, i64>),
    /// Unsatisfiable; indices (into the checked atom slice) of a conflicting
    /// subset. May be empty if the declared bounds alone are inconsistent.
    Unsat(Vec<usize>),
    /// The node budget was exhausted before a decision was reached.
    Unknown,
}

/// One literal derived by [`TheorySession::propagate`]: the candidate atom
/// at `candidate` must take `value`, because the asserted atoms at
/// `antecedents` (positions into the asserted slice) force it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TheoryPropagation {
    /// Index into the candidate slice of the entailed atom.
    pub candidate: usize,
    /// Entailed polarity: `true` for the atom itself, `false` for its
    /// negation.
    pub value: bool,
    /// Positions into the asserted slice of the atoms whose bounds entail
    /// the candidate. Empty when declared variable bounds alone do.
    pub antecedents: Vec<usize>,
}

/// Configuration for the theory check.
#[derive(Clone, Copy, Debug)]
pub struct TheoryConfig {
    /// Maximum number of branch-and-bound nodes to explore.
    pub max_nodes: u64,
    /// Whether to run theory propagation inside the SAT search (on by
    /// default): between unit propagation and each decision, the warm
    /// tableau is consulted for atom literals already entailed by the
    /// asserted bounds, and those are enqueued on the trail instead of
    /// being discovered by a later full check.
    ///
    /// Turning it off restores the pure lazy-SMT loop; verdicts and decode
    /// outputs are identical either way (propagated atoms are *entailed*,
    /// so asserting them during a check is a no-op) — the off-path is kept
    /// as the oracle for the differential tests.
    ///
    /// ```
    /// use lejit_smt::TheoryConfig;
    ///
    /// assert!(TheoryConfig::default().propagate);
    /// let off = TheoryConfig { propagate: false, ..TheoryConfig::default() };
    /// assert!(!off.propagate);
    /// ```
    pub propagate: bool,
}

impl Default for TheoryConfig {
    fn default() -> Self {
        TheoryConfig {
            max_nodes: 50_000,
            propagate: true,
        }
    }
}

/// Per-session theory work counters: the per-check cost profile.
///
/// `pivots` is read live from the simplex (see [`TheorySession::pivots`]);
/// everything else is accumulated here. For a fresh session per check (the
/// historical behaviour, still available via [`check_conjunction`]),
/// `tableau_builds == checks`; a warm session pays the build once.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TheoryStats {
    /// Theory checks served by this session.
    pub checks: u64,
    /// Sync rounds that mirrored at least one newly declared variable into
    /// the tableau (a warm session builds once; a fresh-per-check backend
    /// rebuilds every time).
    pub tableau_builds: u64,
    /// Simplex variables created (declared mirrors + slack rows).
    pub tableau_vars: u64,
    /// Slack rows translated and added to the tableau (interning misses).
    pub slack_rows_built: u64,
    /// Atom translations answered by an already-interned slack row.
    pub slack_row_hits: u64,
    /// Branch-and-bound nodes explored.
    pub bnb_nodes: u64,
}

/// A persistent, warm-started theory backend.
///
/// Owns one [`Simplex`] for the lifetime of the owning solver. Each
/// [`Self::check`] asserts the conjunction's bounds on the live tableau,
/// runs branch-and-bound, and retracts the bounds through the trail —
/// leaving the pivoted basis and the feasible point `β` in place as the
/// warm start for the next check. Declared-variable bounds are asserted
/// below every check's snapshot, so they persist; slack rows are interned
/// by normalized coefficient vector and never rebuilt.
///
/// Verdicts are semantically equivalent to [`check_conjunction`] (Sat ↔ Sat
/// with a feasible model, Unsat ↔ Unsat with a valid core), but the *model
/// values* and *core composition* may differ: the warm basis starts each
/// check at a different vertex than a cold tableau would. The equivalence
/// proptests in `tests/theory_warm_start.rs` pin this contract down.
#[derive(Default)]
pub struct TheorySession {
    sx: Simplex,
    /// Pool variables mirrored so far (`pool.vars()` prefix length).
    synced_vars: usize,
    int_vars: Vec<VarId>,
    svar_of: BTreeMap<VarId, SVar>,
    /// Interned slack rows per normalized coefficient vector.
    slack_of: BTreeMap<Vec<(SVar, Rational)>, SVar>,
    stats: TheoryStats,
}

impl TheorySession {
    /// Creates an empty session (tableau is built lazily on first check).
    pub fn new() -> TheorySession {
        TheorySession::default()
    }

    /// The session's accumulated cost profile.
    pub fn stats(&self) -> TheoryStats {
        self.stats
    }

    /// Total simplex pivots performed across all checks.
    pub fn pivots(&self) -> u64 {
        self.sx.pivots
    }

    /// Current tableau size as `(variables, slack rows)`. Bounded by the
    /// declared variables plus the distinct atom linear forms ever checked —
    /// *not* by the number of checks (the steady-state regression tests
    /// assert exactly this).
    pub fn tableau_size(&self) -> (usize, usize) {
        (self.sx.num_vars(), self.sx.num_rows())
    }

    /// Mirrors integer variables declared since the last sync. Their
    /// declared bounds are asserted below any future snapshot, so they are
    /// never retracted.
    fn sync_pool(&mut self, pool: &TermPool) -> Result<(), SolverError> {
        let vars = pool.vars();
        if vars.len() == self.synced_vars {
            return Ok(());
        }
        let mut added = false;
        for (idx, info) in vars.iter().enumerate().skip(self.synced_vars) {
            if info.sort != Sort::Int {
                continue;
            }
            let v = VarId(idx as u32);
            let sv = self.sx.add_var();
            self.svar_of.insert(v, sv);
            self.int_vars.push(v);
            self.stats.tableau_vars += 1;
            added = true;
            let tag = BoundTag(DECL_BASE + idx as u32);
            // Declared bounds can never conflict with each other (lo <= hi).
            if self
                .sx
                .assert_lower(sv, Rational::from_int(info.lo), tag)
                .is_err()
                || self
                    .sx
                    .assert_upper(sv, Rational::from_int(info.hi), tag)
                    .is_err()
            {
                return Err(SolverError::Internal("declared bounds are inconsistent"));
            }
        }
        self.synced_vars = vars.len();
        if added {
            self.stats.tableau_builds += 1;
        }
        Ok(())
    }

    /// Translates atom `i` and asserts its bound on the live tableau.
    /// Returns an early `Unsat` verdict on an immediate bound clash.
    fn assert_atom(
        &mut self,
        i: usize,
        atom: &LinAtom,
    ) -> Result<Option<TheoryVerdict>, SolverError> {
        let tag = BoundTag(i as u32);
        // Σ c·x + k ≤ 0  ⇔  Σ c·x ≤ −k.
        let neg_k = atom
            .expr
            .constant
            .checked_neg()
            .ok_or(SolverError::Overflow("negating atom constant"))?;
        let bound = Rational::from_int(neg_k);
        if atom.expr.is_constant() {
            // k ≤ 0 ?
            if atom.expr.constant > 0 {
                return Ok(Some(TheoryVerdict::Unsat(vec![i])));
            }
            return Ok(None);
        }
        let mut coeffs: Vec<(SVar, Rational)> = Vec::with_capacity(atom.expr.coeffs.len());
        for (&v, &c) in &atom.expr.coeffs {
            let sv = *self
                .svar_of
                .get(&v)
                .ok_or(SolverError::Internal("atom references undeclared variable"))?;
            coeffs.push((sv, Rational::from_int(c)));
        }
        let result = if let &[(sv, c)] = coeffs.as_slice() {
            // c·x ≤ bound  ⇔  x ≤ bound/c (c>0)  or  x ≥ bound/c (c<0).
            if c.is_positive() {
                self.sx.assert_upper(sv, bound / c, tag)
            } else {
                self.sx.assert_lower(sv, bound / c, tag)
            }
        } else {
            let sv = match self.slack_of.get(&coeffs) {
                Some(&sv) => {
                    self.stats.slack_row_hits += 1;
                    sv
                }
                None => {
                    let sv = self.sx.add_row(&coeffs)?;
                    self.slack_of.insert(coeffs, sv);
                    self.stats.slack_rows_built += 1;
                    self.stats.tableau_vars += 1;
                    sv
                }
            };
            self.sx.assert_upper(sv, bound, tag)
        };
        match result {
            Ok(()) => Ok(None),
            Err(core) => Ok(Some(TheoryVerdict::Unsat(filter_core(core)))),
        }
    }

    /// Tests whether `atom` (Σ c·x + k ≤ 0) is entailed by the bounds
    /// currently asserted on the tableau, by pure bound subsumption — no
    /// pivoting, no row evaluation.
    ///
    /// Returns the antecedent bound tags on success: the (at most one, for
    /// this bound shape) asserted bounds that force the atom. Declared-bound
    /// sentinels are filtered out — an atom entailed by declared bounds
    /// alone has an empty antecedent list.
    ///
    /// Deliberately incomplete: a multi-coefficient atom is only recognized
    /// when its interned slack row already carries a subsuming upper bound
    /// (i.e. a same-form atom with a tighter constant is asserted); bounds
    /// implied *through* a row are left for the full check. Rows are never
    /// built here — a fresh slack variable carries no bounds, so building
    /// one cannot create an entailment.
    fn entailed(&self, atom: &LinAtom) -> Result<Option<Vec<usize>>, SolverError> {
        // Σ c·x + k ≤ 0  ⇔  Σ c·x ≤ −k.
        let neg_k = atom
            .expr
            .constant
            .checked_neg()
            .ok_or(SolverError::Overflow("negating atom constant"))?;
        let bound = Rational::from_int(neg_k);
        if atom.expr.is_constant() {
            // k ≤ 0 is entailed by nothing (or by nothing at all).
            return Ok(if atom.expr.constant <= 0 {
                Some(Vec::new())
            } else {
                None
            });
        }
        let mut coeffs: Vec<(SVar, Rational)> = Vec::with_capacity(atom.expr.coeffs.len());
        for (&v, &c) in &atom.expr.coeffs {
            let sv = *self
                .svar_of
                .get(&v)
                .ok_or(SolverError::Internal("atom references undeclared variable"))?;
            coeffs.push((sv, Rational::from_int(c)));
        }
        let witness = if let &[(sv, c)] = coeffs.as_slice() {
            // c·x ≤ bound  ⇔  x ≤ bound/c (c>0)  or  x ≥ bound/c (c<0).
            if c.is_positive() {
                self.sx.upper_bound(sv).filter(|(up, _)| *up <= bound / c)
            } else {
                self.sx.lower_bound(sv).filter(|(lo, _)| *lo >= bound / c)
            }
        } else {
            match self.slack_of.get(&coeffs) {
                Some(&sv) => self.sx.upper_bound(sv).filter(|(up, _)| *up <= bound),
                None => None,
            }
        };
        Ok(witness.map(|(_, tag)| {
            if tag.0 < DECL_BASE {
                vec![tag.0 as usize]
            } else {
                Vec::new()
            }
        }))
    }

    /// Theory propagation: with `asserted` atoms holding (each tagged by its
    /// position), scans `candidates` — currently *unassigned* atoms — for
    /// literals already entailed by the asserted bounds, in input order
    /// (callers pass candidates in atom-registry order, so the result is
    /// deterministic).
    ///
    /// Each [`TheoryPropagation`] names the candidate index, the entailed
    /// polarity (`true` for the atom itself, `false` for its negation), and
    /// the positions into `asserted` of the antecedent atoms — the
    /// explanation `antecedents ⇒ candidate=value`, which the SAT layer
    /// turns into a reason clause on demand.
    ///
    /// The tableau is snapshotted and fully unwound before returning; like
    /// [`Self::check`], the basis and `β` carry forward. If the asserted
    /// atoms clash among themselves the scan is abandoned and no
    /// propagations are reported — the following full check finds the
    /// conflict and produces a proper core.
    pub fn propagate(
        &mut self,
        pool: &TermPool,
        asserted: &[LinAtom],
        candidates: &[LinAtom],
    ) -> Result<Vec<TheoryPropagation>, SolverError> {
        self.sync_pool(pool)?;
        let snap = self.sx.snapshot();
        let mut out = Vec::new();
        let mut clash = false;
        for (i, atom) in asserted.iter().enumerate() {
            if self.assert_atom(i, atom)?.is_some() {
                clash = true;
                break;
            }
        }
        if !clash {
            for (ci, cand) in candidates.iter().enumerate() {
                if let Some(antecedents) = self.entailed(cand)? {
                    out.push(TheoryPropagation {
                        candidate: ci,
                        value: true,
                        antecedents,
                    });
                } else if let Some(antecedents) = self.entailed(&cand.negated())? {
                    out.push(TheoryPropagation {
                        candidate: ci,
                        value: false,
                        antecedents,
                    });
                }
            }
        }
        self.sx.undo_to(snap);
        Ok(out)
    }

    /// Checks the conjunction of `atoms` against the live tableau.
    ///
    /// Bound assert/retract protocol: newly declared variables are mirrored
    /// first (below the snapshot — their bounds persist), then every atom's
    /// bound is asserted tagged with its index, branch-and-bound runs, and
    /// finally the trail is unwound to the snapshot. The basis and `β` are
    /// *not* restored — they carry forward as the warm start.
    pub fn check(
        &mut self,
        pool: &TermPool,
        atoms: &[LinAtom],
        config: TheoryConfig,
    ) -> Result<TheoryVerdict, SolverError> {
        self.sync_pool(pool)?;
        self.stats.checks += 1;
        let snap = self.sx.snapshot();
        let out = self.check_asserted(atoms, config);
        self.sx.undo_to(snap);
        out
    }

    /// The body of [`Self::check`], between snapshot and undo.
    fn check_asserted(
        &mut self,
        atoms: &[LinAtom],
        config: TheoryConfig,
    ) -> Result<TheoryVerdict, SolverError> {
        for (i, atom) in atoms.iter().enumerate() {
            if let Some(verdict) = self.assert_atom(i, atom)? {
                return Ok(verdict);
            }
        }
        let mut nodes = 0u64;
        let result = branch_and_bound(
            &mut self.sx,
            &self.int_vars,
            &self.svar_of,
            &mut nodes,
            config.max_nodes,
        );
        self.stats.bnb_nodes += nodes;
        match result? {
            BnB::Sat => {
                let mut model: BTreeMap<VarId, i64> = BTreeMap::new();
                for &v in &self.int_vars {
                    let sv = *self
                        .svar_of
                        .get(&v)
                        .ok_or(SolverError::Internal("model variable has no simplex slot"))?;
                    let val = self
                        .sx
                        .value_of(sv)
                        .to_i64()
                        .ok_or(SolverError::Internal("non-integral model value"))?;
                    model.insert(v, val);
                }
                Ok(TheoryVerdict::Sat(model))
            }
            BnB::Unsat(core) => Ok(TheoryVerdict::Unsat(filter_core(core))),
            BnB::Unknown => Ok(TheoryVerdict::Unknown),
        }
    }
}

/// Checks the conjunction of `atoms` over the integers, respecting the
/// declared bounds of every integer variable in `pool`.
///
/// Stateless: builds a fresh single-check [`TheorySession`], so every call
/// pays the full tableau build — this is the *oracle* the warm-start
/// equivalence proptests compare against. The production path is the
/// session owned by [`crate::Solver`].
///
/// `Err` means the atoms could not even be translated (arithmetic overflow,
/// a reference to an undeclared variable, or a broken simplex invariant) —
/// distinct from [`TheoryVerdict::Unknown`], which is a budget exhaustion.
pub fn check_conjunction(
    pool: &TermPool,
    atoms: &[LinAtom],
    config: TheoryConfig,
) -> Result<TheoryVerdict, SolverError> {
    let mut session = TheorySession::new();
    session.check(pool, atoms, config)
}

enum BnB {
    Sat,
    Unsat(Vec<BoundTag>),
    Unknown,
}

fn branch_and_bound(
    sx: &mut Simplex,
    int_vars: &[VarId],
    svar_of: &BTreeMap<VarId, SVar>,
    nodes: &mut u64,
    max_nodes: u64,
) -> Result<BnB, SolverError> {
    *nodes += 1;
    if *nodes > max_nodes {
        return Ok(BnB::Unknown);
    }
    match sx.check()? {
        Feasibility::Infeasible(core) => return Ok(BnB::Unsat(core)),
        Feasibility::Feasible => {}
    }
    // Find the most fractional integer variable.
    let mut pick: Option<(SVar, Rational)> = None;
    let mut best_frac = Rational::ZERO;
    for v in int_vars {
        let sv = *svar_of
            .get(v)
            .ok_or(SolverError::Internal("branch variable has no simplex slot"))?;
        let val = sx.value_of(sv);
        if !val.is_integer() {
            let fl = Rational::new(val.floor(), 1);
            let frac = val - fl;
            // Distance from 1/2, smaller is more fractional.
            let half = Rational::new(1, 2);
            let dist = if frac > half {
                frac - half
            } else {
                half - frac
            };
            if pick.is_none() || dist < best_frac {
                best_frac = dist;
                pick = Some((sv, val));
            }
        }
    }
    let Some((sv, val)) = pick else {
        return Ok(BnB::Sat); // all integral
    };
    let floor = Rational::new(val.floor(), 1);
    let ceil = Rational::new(val.ceil(), 1);
    let btag = BoundTag(BRANCH_TAG);

    // Branch 1: x ≤ floor.
    let snap = sx.snapshot();
    let down = match sx.assert_upper(sv, floor, btag) {
        Ok(()) => branch_and_bound(sx, int_vars, svar_of, nodes, max_nodes)?,
        Err(core) => BnB::Unsat(core),
    };
    sx.undo_to(snap);
    let down_core = match down {
        BnB::Sat => return Ok(BnB::Sat),
        BnB::Unknown => return Ok(BnB::Unknown),
        BnB::Unsat(c) => c,
    };

    // Branch 2: x ≥ ceil.
    let snap = sx.snapshot();
    let up = match sx.assert_lower(sv, ceil, btag) {
        Ok(()) => branch_and_bound(sx, int_vars, svar_of, nodes, max_nodes)?,
        Err(core) => BnB::Unsat(core),
    };
    sx.undo_to(snap);
    let up_core = match up {
        BnB::Sat => return Ok(BnB::Sat),
        BnB::Unknown => return Ok(BnB::Unknown),
        BnB::Unsat(c) => c,
    };

    // Merge: strip branch tags; any integer point satisfies x ≤ floor or
    // x ≥ ceil, so it falsifies one of the two cores entirely.
    let mut merged: Vec<BoundTag> = down_core
        .into_iter()
        .chain(up_core)
        .filter(|t| t.0 != BRANCH_TAG)
        .collect();
    merged.sort_unstable();
    merged.dedup();
    Ok(BnB::Unsat(merged))
}

/// Keeps only real atom indices (drops declared-bound and branch sentinels).
fn filter_core(core: Vec<BoundTag>) -> Vec<usize> {
    let mut out: Vec<usize> = core
        .into_iter()
        .filter(|t| t.0 < DECL_BASE)
        .map(|t| t.0 as usize)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinExpr;

    fn atom(coeffs: &[(VarId, i64)], constant: i64) -> LinAtom {
        let mut e = LinExpr::constant(constant);
        for &(v, c) in coeffs {
            e.add_term(v, c);
        }
        LinAtom { expr: e }
    }

    fn pool_with_vars(n: usize, lo: i64, hi: i64) -> (TermPool, Vec<VarId>) {
        let mut p = TermPool::new();
        let vs = (0..n)
            .map(|i| p.int_var(&format!("x{i}"), lo, hi))
            .collect();
        (p, vs)
    }

    #[test]
    fn empty_conjunction_is_sat() {
        let (p, vs) = pool_with_vars(2, 0, 10);
        match check_conjunction(&p, &[], TheoryConfig::default()).unwrap() {
            TheoryVerdict::Sat(m) => {
                for v in vs {
                    let val = m[&v];
                    assert!((0..=10).contains(&val));
                }
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn simple_bounds_conflict() {
        let (p, vs) = pool_with_vars(1, 0, 10);
        // x >= 4  and  x <= 3:   (-x + 4 <= 0), (x - 3 <= 0).
        let a1 = atom(&[(vs[0], -1)], 4);
        let a2 = atom(&[(vs[0], 1)], -3);
        match check_conjunction(&p, &[a1, a2], TheoryConfig::default()).unwrap() {
            TheoryVerdict::Unsat(core) => assert_eq!(core, vec![0, 1]),
            other => panic!("expected unsat, got {other:?}"),
        }
    }

    #[test]
    fn declared_bounds_are_respected_and_filtered() {
        let (p, vs) = pool_with_vars(1, 0, 10);
        // x >= 11 conflicts with the declared upper bound only.
        let a = atom(&[(vs[0], -1)], 11);
        match check_conjunction(&p, &[a], TheoryConfig::default()).unwrap() {
            TheoryVerdict::Unsat(core) => assert_eq!(core, vec![0]),
            other => panic!("expected unsat, got {other:?}"),
        }
    }

    #[test]
    fn sum_equality_feasible() {
        let (p, vs) = pool_with_vars(5, 0, 60);
        // sum = 100 via <= and >=.
        let le = atom(&vs.iter().map(|&v| (v, 1)).collect::<Vec<_>>(), -100);
        let ge = atom(&vs.iter().map(|&v| (v, -1)).collect::<Vec<_>>(), 100);
        match check_conjunction(&p, &[le, ge], TheoryConfig::default()).unwrap() {
            TheoryVerdict::Sat(m) => {
                let total: i64 = vs.iter().map(|v| m[v]).sum();
                assert_eq!(total, 100);
                assert!(vs.iter().all(|v| (0..=60).contains(&m[v])));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn integrality_requires_branching() {
        let (p, vs) = pool_with_vars(1, 0, 10);
        // 2x >= 5 and 2x <= 5  → x = 5/2, no integer solution.
        let ge = atom(&[(vs[0], -2)], 5);
        let le = atom(&[(vs[0], 2)], -5);
        match check_conjunction(&p, &[ge, le], TheoryConfig::default()).unwrap() {
            TheoryVerdict::Unsat(core) => {
                assert!(!core.is_empty());
                assert!(core.iter().all(|&i| i < 2));
            }
            other => panic!("expected unsat, got {other:?}"),
        }
    }

    #[test]
    fn integrality_branching_finds_solutions() {
        let (p, vs) = pool_with_vars(2, 0, 10);
        // 2x + 2y = 10 has integer solutions even though the LP relaxation
        // may first land on fractional points; 3x + 3y = 10 does not.
        let a1 = atom(&[(vs[0], 2), (vs[1], 2)], -10);
        let a2 = atom(&[(vs[0], -2), (vs[1], -2)], 10);
        match check_conjunction(&p, &[a1, a2], TheoryConfig::default()).unwrap() {
            TheoryVerdict::Sat(m) => assert_eq!(m[&vs[0]] + m[&vs[1]], 5),
            other => panic!("expected sat, got {other:?}"),
        }
        let b1 = atom(&[(vs[0], 3), (vs[1], 3)], -10);
        let b2 = atom(&[(vs[0], -3), (vs[1], -3)], 10);
        assert!(matches!(
            check_conjunction(&p, &[b1, b2], TheoryConfig::default()).unwrap(),
            TheoryVerdict::Unsat(_)
        ));
    }

    #[test]
    fn trivially_false_constant_atom() {
        let (p, _vs) = pool_with_vars(1, 0, 10);
        // 0·x + 3 <= 0 is false.
        let a = atom(&[], 3);
        match check_conjunction(&p, &[a], TheoryConfig::default()).unwrap() {
            TheoryVerdict::Unsat(core) => assert_eq!(core, vec![0]),
            other => panic!("expected unsat, got {other:?}"),
        }
    }

    #[test]
    fn lookahead_range_shape() {
        // The Fig. 1b scenario: I0..I4 in [0,60], sum=100, I0..I2 fixed to
        // 20,15,25. Then I3 = 41 must be unsat, I3 = 40 sat.
        let (p, vs) = pool_with_vars(5, 0, 60);
        let mut atoms = vec![
            atom(&vs.iter().map(|&v| (v, 1)).collect::<Vec<_>>(), -100),
            atom(&vs.iter().map(|&v| (v, -1)).collect::<Vec<_>>(), 100),
        ];
        for (i, val) in [(0usize, 20i64), (1, 15), (2, 25)] {
            atoms.push(atom(&[(vs[i], 1)], -val));
            atoms.push(atom(&[(vs[i], -1)], val));
        }
        let mut with_41 = atoms.clone();
        with_41.push(atom(&[(vs[3], -1)], 41));
        assert!(matches!(
            check_conjunction(&p, &with_41, TheoryConfig::default()).unwrap(),
            TheoryVerdict::Unsat(_)
        ));
        let mut with_40 = atoms.clone();
        with_40.push(atom(&[(vs[3], -1)], 40));
        assert!(matches!(
            check_conjunction(&p, &with_40, TheoryConfig::default()).unwrap(),
            TheoryVerdict::Sat(_)
        ));
    }

    #[test]
    fn node_budget_surfaces_unknown() {
        let (p, vs) = pool_with_vars(3, 0, 1000);
        // A system needing at least one branch, with a budget of 1 node.
        let a1 = atom(&[(vs[0], 2), (vs[1], 2), (vs[2], 2)], -7);
        let a2 = atom(&[(vs[0], -2), (vs[1], -2), (vs[2], -2)], 7);
        let config = TheoryConfig {
            max_nodes: 1,
            ..TheoryConfig::default()
        };
        let verdict = check_conjunction(&p, &[a1, a2], config).unwrap();
        assert_eq!(verdict, TheoryVerdict::Unknown);
    }
}
