//! Typed solver errors.
//!
//! The solver's hot paths (CDCL propagate/analyze, the simplex pivot, and
//! everything reachable from [`crate::Solver::check`]) are panic-free by
//! policy — enforced statically by the `L2-unwrap` lint in `lejit-analyze`.
//! Conditions that previously panicked (broken internal invariants,
//! arithmetic overflow during constraint translation, clauses referencing
//! unallocated variables) surface as a [`SolverError`] instead, so callers
//! can reject the offending query without tearing down the process.

use std::fmt;

/// An error produced by the SMT stack instead of a panic.
///
/// Every variant carries a static description of the violated condition.
/// These errors indicate a malformed input or a broken internal invariant
/// — they are *not* part of the normal SAT/UNSAT/Unknown result space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverError {
    /// An `i64` computation overflowed while normalizing terms or
    /// translating constraints into the theory solver.
    Overflow(&'static str),
    /// The clause database is malformed: a clause references a SAT
    /// variable that was never allocated.
    InvalidClause(&'static str),
    /// An internal invariant did not hold. Reported instead of panicking
    /// so a decode session can discard the query and continue.
    Internal(&'static str),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::Overflow(what) => write!(f, "arithmetic overflow: {what}"),
            SolverError::InvalidClause(what) => write!(f, "invalid clause: {what}"),
            SolverError::Internal(what) => write!(f, "internal solver invariant violated: {what}"),
        }
    }
}

impl std::error::Error for SolverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SolverError::Overflow("negating atom constant");
        assert!(e.to_string().contains("overflow"));
        let e = SolverError::InvalidClause("unallocated variable");
        assert!(e.to_string().contains("invalid clause"));
    }
}
