//! Text encoding of telemetry windows for the character-level LM.
//!
//! Following the paper, numeric values are treated as plain text and
//! generated digit by digit. The formats are:
//!
//! * **Imputation example** (prompt `|` completion):
//!   `T=100;E=8;R=3;G=70;C=12;D=0|20,15,25,30,10.`
//!   The prompt carries the coarse signals; the completion is the fine
//!   series, comma-separated, terminated by `.`.
//! * **Synthesis example** (unconditional):
//!   `T=100;E=8;R=3;G=70;C=12;D=0.`
//!
//! Parsers reject malformed text instead of guessing — the decoder relies
//! on parse failures to detect that an unconstrained model derailed.

use crate::signals::{CoarseField, CoarseSignals, Window};

/// The character separating prompt from completion in imputation examples.
pub const PROMPT_SEPARATOR: char = '|';
/// The character terminating a generated sequence.
pub const FINE_TERMINATOR: char = '.';

/// Encodes the coarse signals as a prompt (without the trailing separator).
pub fn encode_prompt(coarse: &CoarseSignals) -> String {
    let mut s = String::new();
    for (i, (f, v)) in coarse.iter().enumerate() {
        if i > 0 {
            s.push(';');
        }
        s.push(f.key());
        s.push('=');
        s.push_str(&v.to_string());
    }
    s
}

/// Encodes a full imputation training example: prompt `|` fine-series `.`.
pub fn encode_imputation_example(w: &Window) -> String {
    let mut s = encode_prompt(&w.coarse);
    s.push(PROMPT_SEPARATOR);
    for (i, v) in w.fine.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&v.to_string());
    }
    s.push(FINE_TERMINATOR);
    s
}

/// Encodes a synthesis training example: coarse signals only, terminated.
pub fn encode_synthesis_example(coarse: &CoarseSignals) -> String {
    let mut s = encode_prompt(coarse);
    s.push(FINE_TERMINATOR);
    s
}

/// A sample string containing every character the encodings can produce —
/// feed it (plus real examples) to `lejit-lm`-style vocabulary builders.
pub fn vocab_corpus_sample() -> String {
    let mut s = String::from("0123456789,;|=.");
    for f in CoarseField::ALL {
        s.push(f.key());
    }
    s
}

/// Parses a generated fine series like `20,15,25,30,10.` (terminator
/// optional). Returns `Err` with a description on malformed input.
pub fn parse_fine(text: &str) -> Result<Vec<i64>, String> {
    let body = text.strip_suffix(FINE_TERMINATOR).unwrap_or(text);
    if body.is_empty() {
        return Err("empty fine series".to_string());
    }
    body.split(',')
        .map(|part| {
            if part.is_empty() {
                return Err("empty value in fine series".to_string());
            }
            if part.len() > 1 && part.starts_with('0') {
                return Err(format!("leading zero in `{part}`"));
            }
            part.parse::<i64>()
                .map_err(|e| format!("bad value `{part}`: {e}"))
        })
        .collect()
}

/// Parses a synthesis output like `T=100;E=8;R=3;G=70;C=12;D=0.` back into
/// coarse signals. All six fields must appear exactly once, in canonical
/// order.
pub fn parse_coarse(text: &str) -> Result<CoarseSignals, String> {
    let body = text.strip_suffix(FINE_TERMINATOR).unwrap_or(text);
    let mut out = CoarseSignals::default();
    let parts: Vec<&str> = body.split(';').collect();
    if parts.len() != CoarseField::ALL.len() {
        return Err(format!(
            "expected {} fields, found {}",
            CoarseField::ALL.len(),
            parts.len()
        ));
    }
    for (expected, part) in CoarseField::ALL.into_iter().zip(parts) {
        let mut chars = part.chars();
        let key = chars.next().ok_or("empty field")?;
        if key != expected.key() {
            return Err(format!(
                "field out of order: expected `{}`, found `{key}`",
                expected.key()
            ));
        }
        if chars.next() != Some('=') {
            return Err(format!("missing `=` in `{part}`"));
        }
        let digits: String = chars.collect();
        if digits.is_empty() {
            return Err(format!("missing value in `{part}`"));
        }
        if digits.len() > 1 && digits.starts_with('0') {
            return Err(format!("leading zero in `{part}`"));
        }
        let v: i64 = digits
            .parse()
            .map_err(|e| format!("bad value `{digits}`: {e}"))?;
        out.set(expected, v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, TelemetryConfig};

    fn sample_window() -> Window {
        let mut coarse = CoarseSignals::default();
        coarse.set(CoarseField::TotalIngress, 100);
        coarse.set(CoarseField::EcnBytes, 8);
        coarse.set(CoarseField::RetransBytes, 3);
        coarse.set(CoarseField::EgressTotal, 70);
        coarse.set(CoarseField::ConnCount, 12);
        coarse.set(CoarseField::Drops, 0);
        Window {
            rack: 0,
            index: 0,
            coarse,
            fine: vec![20, 15, 25, 30, 10],
        }
    }

    #[test]
    fn imputation_encoding_matches_spec() {
        let w = sample_window();
        assert_eq!(
            encode_imputation_example(&w),
            "T=100;E=8;R=3;G=70;C=12;D=0|20,15,25,30,10."
        );
    }

    #[test]
    fn synthesis_encoding_matches_spec() {
        let w = sample_window();
        assert_eq!(
            encode_synthesis_example(&w.coarse),
            "T=100;E=8;R=3;G=70;C=12;D=0."
        );
    }

    #[test]
    fn fine_roundtrip() {
        assert_eq!(
            parse_fine("20,15,25,30,10.").unwrap(),
            vec![20, 15, 25, 30, 10]
        );
        assert_eq!(parse_fine("0.").unwrap(), vec![0]);
        assert_eq!(parse_fine("7").unwrap(), vec![7]);
    }

    #[test]
    fn fine_rejects_malformed() {
        assert!(parse_fine("").is_err());
        assert!(parse_fine(",5").is_err());
        assert!(parse_fine("5,").is_err());
        assert!(parse_fine("5,,6").is_err());
        assert!(parse_fine("05").is_err());
        assert!(parse_fine("5,x").is_err());
    }

    #[test]
    fn coarse_roundtrip() {
        let w = sample_window();
        let text = encode_synthesis_example(&w.coarse);
        assert_eq!(parse_coarse(&text).unwrap(), w.coarse);
    }

    #[test]
    fn coarse_rejects_malformed() {
        assert!(parse_coarse("T=100").is_err()); // missing fields
        assert!(parse_coarse("E=8;T=100;R=3;G=70;C=12;D=0.").is_err()); // order
        assert!(parse_coarse("T=;E=8;R=3;G=70;C=12;D=0.").is_err()); // empty value
        assert!(parse_coarse("T100;E=8;R=3;G=70;C=12;D=0.").is_err()); // no '='
        assert!(parse_coarse("T=01;E=8;R=3;G=70;C=12;D=0.").is_err()); // leading 0
    }

    #[test]
    fn generated_dataset_roundtrips() {
        let d = generate(TelemetryConfig {
            racks_train: 2,
            racks_test: 1,
            windows_per_rack: 20,
            ..TelemetryConfig::default()
        });
        for w in d.train.iter().chain(&d.test) {
            let text = encode_imputation_example(w);
            let (prompt, completion) = text.split_once(PROMPT_SEPARATOR).unwrap();
            assert_eq!(parse_coarse(prompt).unwrap(), w.coarse);
            assert_eq!(parse_fine(completion).unwrap(), w.fine);
        }
    }

    #[test]
    fn vocab_sample_covers_encodings() {
        let d = generate(TelemetryConfig {
            racks_train: 1,
            racks_test: 1,
            windows_per_rack: 10,
            ..TelemetryConfig::default()
        });
        let allowed: std::collections::HashSet<char> = vocab_corpus_sample().chars().collect();
        for w in d.train.iter().chain(&d.test) {
            for c in encode_imputation_example(w).chars() {
                assert!(allowed.contains(&c), "char `{c}` missing from vocab sample");
            }
        }
    }
}
