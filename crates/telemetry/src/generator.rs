//! The synthetic datacenter telemetry generator.
//!
//! Substitutes the proprietary Meta dataset (Ghabashneh et al., IMC '22) the
//! paper evaluates on. Each rack runs an independent two-state
//! Markov-modulated ingress process with a diurnal load factor; coarse
//! aggregates are derived *exactly* from the fine series so that the
//! ground-truth data satisfies the domain rules the miner is supposed to
//! discover. Everything is deterministic given the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::signals::{CoarseField, CoarseSignals, Dataset, Window};

/// Parameters of the synthetic workload.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Number of training racks (paper: 80).
    pub racks_train: usize,
    /// Number of held-out test racks (paper: 10).
    pub racks_test: usize,
    /// Windows generated per rack.
    pub windows_per_rack: usize,
    /// Fine steps per window (the paper's walkthrough uses T = 5).
    pub window_len: usize,
    /// Per-step bandwidth cap (the paper's walkthrough uses BW = 60).
    pub bandwidth: i64,
    /// RNG seed; the same seed reproduces the dataset bit-for-bit.
    pub seed: u64,
    /// Optional rate-limiter on the fine series: consecutive steps differ by
    /// at most this much (models shallow-buffered racks whose ingress ramps
    /// rather than jumps). `None` = unconstrained bursts (the default).
    pub max_step_change: Option<i64>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            racks_train: 80,
            racks_test: 10,
            windows_per_rack: 40,
            window_len: 5,
            bandwidth: 60,
            seed: 0xDA7ACE,
            max_step_change: None,
        }
    }
}

/// ECN marking threshold as a fraction of bandwidth (¾·BW).
fn ecn_threshold(bw: i64) -> i64 {
    (bw * 3) / 4
}

/// Generates a dataset under `config`.
pub fn generate(config: TelemetryConfig) -> Dataset {
    let mut train = Vec::with_capacity(config.racks_train * config.windows_per_rack);
    let mut test = Vec::with_capacity(config.racks_test * config.windows_per_rack);
    let total_racks = config.racks_train + config.racks_test;
    for rack in 0..total_racks {
        let windows = generate_rack(&config, rack as u32);
        if rack < config.racks_train {
            train.extend(windows);
        } else {
            test.extend(windows);
        }
    }
    Dataset {
        train,
        test,
        bandwidth: config.bandwidth,
        window_len: config.window_len,
    }
}

/// Generates one rack's trace of consecutive windows.
fn generate_rack(config: &TelemetryConfig, rack: u32) -> Vec<Window> {
    let mut rng = StdRng::seed_from_u64(
        config.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(rack as u64 + 1)),
    );
    let bw = config.bandwidth;
    let thresh = ecn_threshold(bw);
    // Per-rack personality: how bursty and how loaded.
    let burst_enter: f64 = rng.random_range(0.08..0.25);
    let burst_exit: f64 = rng.random_range(0.3..0.6);
    let idle_mean: f64 = rng.random_range(0.08..0.25) * bw as f64;
    let egress_ratio: f64 = rng.random_range(0.55..0.9);
    let conn_base: i64 = rng.random_range(2..10);

    let mut bursting = false;
    let mut prev_drops: i64 = 0;
    let mut prev_fine: i64 = 0;
    let mut out = Vec::with_capacity(config.windows_per_rack);

    for index in 0..config.windows_per_rack {
        // Diurnal load factor in [0.5, 1.5], period ~200 windows.
        let phase = rack as f64 * 0.7;
        let diurnal = 1.0 + 0.5 * (2.0 * std::f64::consts::PI * index as f64 / 200.0 + phase).sin();

        let mut fine = Vec::with_capacity(config.window_len);
        let mut drops: i64 = 0;
        for _ in 0..config.window_len {
            // Markov burst state transitions.
            if bursting {
                if rng.random_bool(burst_exit) {
                    bursting = false;
                }
            } else if rng.random_bool((burst_enter * diurnal).clamp(0.01, 0.9)) {
                bursting = true;
            }
            let raw: f64 = if bursting {
                // Bursts land in the upper range, frequently at the cap.
                rng.random_range(0.65..1.15) * bw as f64
            } else {
                // Idle traffic: exponential-ish around the idle mean.
                let u: f64 = rng.random::<f64>().max(1e-9);
                -idle_mean * diurnal * u.ln()
            };
            let mut capped = raw.round().clamp(0.0, bw as f64) as i64;
            if raw > bw as f64 {
                // Saturation: excess bytes are dropped.
                drops += (raw - bw as f64).round() as i64;
            }
            if let Some(msc) = config.max_step_change {
                // Rate-limited rack: ingress ramps instead of jumping.
                capped = capped.clamp(prev_fine - msc, prev_fine + msc).clamp(0, bw);
            }
            prev_fine = capped;
            fine.push(capped);
        }

        let total: i64 = fine.iter().sum();
        // ECN bytes: bytes above the threshold across the window, which is
        // > 0 exactly when some fine value crossed the threshold.
        let ecn: i64 = fine.iter().map(|&v| (v - thresh).max(0)).sum();
        // Retransmissions echo last window's drops, plus noise (never
        // exceeding the window total).
        let retrans: i64 = if prev_drops > 0 {
            let jitter: f64 = rng.random_range(0.5..1.0);
            ((prev_drops as f64 * jitter).round() as i64).min(total)
        } else {
            0
        };
        // Egress: a fraction of ingress (never exceeding it).
        let egress: i64 = ((total as f64) * egress_ratio * rng.random_range(0.9..1.0))
            .round()
            .clamp(0.0, total as f64) as i64;
        // Connections: base + load-driven, capped for digit-width stability.
        let conn: i64 = (conn_base + total / (bw.max(1) * 2)).clamp(1, 99);
        let drops = drops.min(total.max(0));
        prev_drops = drops;

        let mut coarse = CoarseSignals::default();
        coarse.set(CoarseField::TotalIngress, total);
        coarse.set(CoarseField::EcnBytes, ecn);
        coarse.set(CoarseField::RetransBytes, retrans);
        coarse.set(CoarseField::EgressTotal, egress);
        coarse.set(CoarseField::ConnCount, conn);
        coarse.set(CoarseField::Drops, drops);

        out.push(Window {
            rack,
            index: index as u32,
            coarse,
            fine,
        });
    }
    out
}

/// Invariants every generated window satisfies (used by tests, the rule
/// miner's sanity checks, and the violation counter's ground-truth audit).
pub fn window_invariants_hold(w: &Window, bandwidth: i64) -> bool {
    let total: i64 = w.fine.iter().sum();
    let thresh = ecn_threshold(bandwidth);
    let max_fine = w.fine.iter().copied().max().unwrap_or(0);
    w.fine.iter().all(|&v| (0..=bandwidth).contains(&v))
        && w.coarse.get(CoarseField::TotalIngress) == total
        && (w.coarse.get(CoarseField::EcnBytes) > 0) == (max_fine > thresh)
        && w.coarse.get(CoarseField::EgressTotal) <= total
        && w.coarse.get(CoarseField::Drops) <= total.max(0)
        && w.coarse.get(CoarseField::ConnCount) >= 1
        && w.coarse.iter().all(|(_, v)| v >= 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> TelemetryConfig {
        TelemetryConfig {
            racks_train: 4,
            racks_test: 2,
            windows_per_rack: 50,
            ..TelemetryConfig::default()
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d1 = generate(small_config());
        let d2 = generate(small_config());
        assert_eq!(d1.train, d2.train);
        assert_eq!(d1.test, d2.test);
        let d3 = generate(TelemetryConfig {
            seed: 123,
            ..small_config()
        });
        assert_ne!(d1.train, d3.train);
    }

    #[test]
    fn split_sizes() {
        let cfg = small_config();
        let d = generate(cfg);
        assert_eq!(d.train.len(), cfg.racks_train * cfg.windows_per_rack);
        assert_eq!(d.test.len(), cfg.racks_test * cfg.windows_per_rack);
        // Racks don't overlap across splits.
        let max_train_rack = d.train.iter().map(|w| w.rack).max().unwrap();
        let min_test_rack = d.test.iter().map(|w| w.rack).min().unwrap();
        assert!(max_train_rack < min_test_rack);
    }

    #[test]
    fn all_invariants_hold() {
        let cfg = small_config();
        let d = generate(cfg);
        for w in d.train.iter().chain(&d.test) {
            assert!(
                window_invariants_hold(w, cfg.bandwidth),
                "invariant violated in {w:?}"
            );
        }
    }

    #[test]
    fn data_is_actually_bursty() {
        // The point of the dataset: bursts exist (values near BW) and so do
        // idle periods (small values), and ECN fires sometimes but not always.
        let cfg = small_config();
        let d = generate(cfg);
        let all_fine: Vec<i64> = d.train.iter().flat_map(|w| w.fine.clone()).collect();
        let near_cap = all_fine
            .iter()
            .filter(|&&v| v >= cfg.bandwidth * 3 / 4)
            .count();
        let idle = all_fine.iter().filter(|&&v| v <= cfg.bandwidth / 4).count();
        assert!(near_cap > all_fine.len() / 50, "too few bursts: {near_cap}");
        assert!(idle > all_fine.len() / 10, "too few idle steps: {idle}");
        let ecn_windows = d
            .train
            .iter()
            .filter(|w| w.coarse.get(CoarseField::EcnBytes) > 0)
            .count();
        assert!(ecn_windows > 0 && ecn_windows < d.train.len());
    }

    #[test]
    fn retrans_echoes_drops() {
        let cfg = small_config();
        let d = generate(cfg);
        // Whenever retrans > 0 in window i, window i-1 of the same rack had
        // drops > 0 (by construction).
        for pair in d.train.windows(2) {
            let (prev, cur) = (&pair[0], &pair[1]);
            if prev.rack == cur.rack && cur.coarse.get(CoarseField::RetransBytes) > 0 {
                assert!(prev.coarse.get(CoarseField::Drops) > 0);
            }
        }
    }

    #[test]
    fn train_max_reflects_data() {
        let d = generate(small_config());
        let m = d.train_max(CoarseField::TotalIngress);
        assert!(d
            .train
            .iter()
            .all(|w| w.coarse.get(CoarseField::TotalIngress) <= m));
        assert!(d
            .train
            .iter()
            .any(|w| w.coarse.get(CoarseField::TotalIngress) == m));
    }
}

#[cfg(test)]
mod ramp_tests {
    use super::*;

    #[test]
    fn max_step_change_is_respected() {
        let cfg = TelemetryConfig {
            racks_train: 3,
            racks_test: 1,
            windows_per_rack: 40,
            max_step_change: Some(15),
            ..TelemetryConfig::default()
        };
        let d = generate(cfg);
        for windows in [&d.train, &d.test] {
            // Deltas are bounded within each rack's consecutive stream.
            let mut prev: Option<(u32, i64)> = None;
            for w in windows.iter() {
                for &v in &w.fine {
                    if let Some((rack, p)) = prev {
                        if rack == w.rack {
                            assert!(
                                (v - p).abs() <= 15,
                                "step change {} -> {} exceeds limit",
                                p,
                                v
                            );
                        }
                    }
                    prev = Some((w.rack, v));
                }
            }
        }
        // Invariants still hold with the rate limiter.
        for w in d.train.iter().chain(&d.test) {
            assert!(window_invariants_hold(w, cfg.bandwidth));
        }
    }

    #[test]
    fn ramped_data_still_has_load_variation() {
        let d = generate(TelemetryConfig {
            racks_train: 3,
            racks_test: 1,
            windows_per_rack: 60,
            max_step_change: Some(15),
            ..TelemetryConfig::default()
        });
        let all: Vec<i64> = d.train.iter().flat_map(|w| w.fine.clone()).collect();
        let hi = *all.iter().max().unwrap();
        let lo = *all.iter().min().unwrap();
        assert!(
            hi - lo > 20,
            "rate limiter flattened the workload: {lo}..{hi}"
        );
    }
}
