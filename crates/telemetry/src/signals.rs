//! Telemetry record types: coarse signals, windows, and datasets.

use serde::{Deserialize, Serialize};

/// The coarse (50 ms-window aggregate) signals, in a fixed order so rules
/// and miners can iterate generically.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CoarseField {
    /// Sum of fine-grained ingress bytes in the window.
    TotalIngress,
    /// ECN-marked byte count (congestion signal).
    EcnBytes,
    /// Retransmitted bytes (echoes recent drops).
    RetransBytes,
    /// Total egress bytes.
    EgressTotal,
    /// Active connection count.
    ConnCount,
    /// Dropped bytes.
    Drops,
}

impl CoarseField {
    /// All fields, in canonical order.
    pub const ALL: [CoarseField; 6] = [
        CoarseField::TotalIngress,
        CoarseField::EcnBytes,
        CoarseField::RetransBytes,
        CoarseField::EgressTotal,
        CoarseField::ConnCount,
        CoarseField::Drops,
    ];

    /// Canonical index of the field.
    pub fn index(self) -> usize {
        match self {
            CoarseField::TotalIngress => 0,
            CoarseField::EcnBytes => 1,
            CoarseField::RetransBytes => 2,
            CoarseField::EgressTotal => 3,
            CoarseField::ConnCount => 4,
            CoarseField::Drops => 5,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            CoarseField::TotalIngress => "total_ingress",
            CoarseField::EcnBytes => "ecn_bytes",
            CoarseField::RetransBytes => "retrans_bytes",
            CoarseField::EgressTotal => "egress_total",
            CoarseField::ConnCount => "conn_count",
            CoarseField::Drops => "drops",
        }
    }

    /// The single-character key used in the text encoding.
    pub fn key(self) -> char {
        match self {
            CoarseField::TotalIngress => 'T',
            CoarseField::EcnBytes => 'E',
            CoarseField::RetransBytes => 'R',
            CoarseField::EgressTotal => 'G',
            CoarseField::ConnCount => 'C',
            CoarseField::Drops => 'D',
        }
    }

    /// Looks a field up by its text-encoding key.
    pub fn from_key(key: char) -> Option<CoarseField> {
        CoarseField::ALL.into_iter().find(|f| f.key() == key)
    }
}

/// The vector of coarse signal values for one window.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct CoarseSignals(pub [i64; 6]);

impl CoarseSignals {
    /// The value of a field.
    pub fn get(&self, f: CoarseField) -> i64 {
        self.0[f.index()]
    }

    /// Sets the value of a field.
    pub fn set(&mut self, f: CoarseField, v: i64) {
        self.0[f.index()] = v;
    }

    /// Iterates `(field, value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (CoarseField, i64)> + '_ {
        CoarseField::ALL.into_iter().map(move |f| (f, self.get(f)))
    }
}

/// One telemetry window: the coarse aggregates plus the fine-grained ingress
/// series they summarize.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Window {
    /// Rack the window was measured on.
    pub rack: u32,
    /// Window index within the rack's trace.
    pub index: u32,
    /// Coarse aggregates.
    pub coarse: CoarseSignals,
    /// Fine-grained ingress bytes, one entry per sub-interval.
    pub fine: Vec<i64>,
}

/// A train/test split of telemetry windows.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    /// Training windows (80 racks in the paper's setup).
    pub train: Vec<Window>,
    /// Held-out test windows (10 racks in the paper's setup).
    pub test: Vec<Window>,
    /// Per-fine-step bandwidth cap used during generation.
    pub bandwidth: i64,
    /// Fine steps per window.
    pub window_len: usize,
}

impl Dataset {
    /// The maximum observed coarse value per field across the training set
    /// (used to bound solver variables and size text fields).
    pub fn train_max(&self, f: CoarseField) -> i64 {
        self.train
            .iter()
            .map(|w| w.coarse.get(f))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_keys_are_unique_and_roundtrip() {
        for f in CoarseField::ALL {
            assert_eq!(CoarseField::from_key(f.key()), Some(f));
        }
        let mut keys: Vec<char> = CoarseField::ALL.iter().map(|f| f.key()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), CoarseField::ALL.len());
    }

    #[test]
    fn indices_match_order() {
        for (i, f) in CoarseField::ALL.into_iter().enumerate() {
            assert_eq!(f.index(), i);
        }
    }

    #[test]
    fn signals_get_set() {
        let mut s = CoarseSignals::default();
        s.set(CoarseField::EcnBytes, 42);
        assert_eq!(s.get(CoarseField::EcnBytes), 42);
        assert_eq!(s.get(CoarseField::Drops), 0);
        let pairs: Vec<(CoarseField, i64)> = s.iter().collect();
        assert_eq!(pairs.len(), 6);
        assert_eq!(pairs[1], (CoarseField::EcnBytes, 42));
    }
}

impl Dataset {
    /// Serializes the dataset as JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("datasets are serializable")
    }

    /// Parses a dataset from JSON.
    pub fn from_json(s: &str) -> Result<Dataset, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Writes the dataset to a file (JSON).
    pub fn save_to_path<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a dataset from a file written by [`Self::save_to_path`].
    pub fn load_from_path<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<Dataset> {
        let text = std::fs::read_to_string(path)?;
        Dataset::from_json(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod persistence_tests {
    use crate::generator::{generate, TelemetryConfig};
    use crate::signals::Dataset;

    #[test]
    fn json_roundtrip_is_lossless() {
        let d = generate(TelemetryConfig {
            racks_train: 2,
            racks_test: 1,
            windows_per_rack: 10,
            ..TelemetryConfig::default()
        });
        let back = Dataset::from_json(&d.to_json()).unwrap();
        assert_eq!(back.train, d.train);
        assert_eq!(back.test, d.test);
        assert_eq!(back.bandwidth, d.bandwidth);
        assert_eq!(back.window_len, d.window_len);
    }

    #[test]
    fn file_roundtrip() {
        let d = generate(TelemetryConfig {
            racks_train: 1,
            racks_test: 1,
            windows_per_rack: 5,
            ..TelemetryConfig::default()
        });
        let path = std::env::temp_dir().join("lejit_dataset_test.json");
        d.save_to_path(&path).unwrap();
        let back = Dataset::load_from_path(&path).unwrap();
        assert_eq!(back.train, d.train);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_file_is_rejected() {
        let path = std::env::temp_dir().join("lejit_dataset_bad.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(Dataset::load_from_path(&path).is_err());
        std::fs::remove_file(path).ok();
    }
}
