//! # lejit-telemetry
//!
//! Synthetic datacenter burst telemetry — the workload substrate of the
//! LeJIT reproduction.
//!
//! The paper evaluates on the (proprietary) Meta datacenter dataset of
//! Ghabashneh et al. (IMC '22): per-rack measurements where *fine-grained*
//! millisecond-level ingress bytes are coupled to *coarse-grained* 50 ms
//! window aggregates (total ingress, ECN-marked bytes, retransmissions, …).
//! This crate simulates that data with the couplings that make the
//! evaluation meaningful:
//!
//! * fine ingress follows a two-state (idle/burst) Markov-modulated process
//!   with a diurnal baseline, capped at the rack bandwidth,
//! * `total_ingress` is *exactly* the sum of the fine series (rule R2),
//! * every fine value is within `[0, BW]` (rule R1),
//! * `ecn_bytes > 0` iff some fine value crossed the ECN threshold
//!   (≥ ¾·BW ≥ ½·BW — rule R3's burst implication),
//! * drops occur only at saturation, retransmissions echo the previous
//!   window's drops, egress is bounded by ingress, and connection counts
//!   scale with load — giving the NetNomos-style miner non-trivial
//!   cross-signal rules to discover.
//!
//! The [`encoding`] module renders windows as plain text for the
//! character-level LM ("treating numeric values as plain text", as the
//! paper does) and parses generated text back into numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encoding;
pub mod generator;
pub mod signals;

pub use encoding::{
    encode_imputation_example, encode_prompt, encode_synthesis_example, parse_coarse, parse_fine,
    vocab_corpus_sample, FINE_TERMINATOR, PROMPT_SEPARATOR,
};
pub use generator::{generate, TelemetryConfig};
pub use signals::{CoarseField, CoarseSignals, Dataset, Window};
