//! Burst detection and the downstream burst-analysis accuracies of Fig. 4
//! (right): burst count, duration, volume, and position.
//!
//! A *burst* is a maximal run of fine-grained values strictly above a
//! threshold (the paper's burst definition uses half the bandwidth, after
//! Ghabashneh et al.). Accuracies compare an imputed series against the
//! ground truth per window and are averaged by the caller.

/// One detected burst.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Burst {
    /// Index of the first step in the burst.
    pub start: usize,
    /// Number of consecutive steps in the burst.
    pub duration: usize,
    /// Total bytes across the burst.
    pub volume: i64,
}

/// Detects maximal runs of values `> threshold`.
pub fn detect_bursts(series: &[i64], threshold: i64) -> Vec<Burst> {
    let mut out = Vec::new();
    let mut current: Option<Burst> = None;
    for (i, &v) in series.iter().enumerate() {
        if v > threshold {
            match &mut current {
                Some(b) => {
                    b.duration += 1;
                    b.volume += v;
                }
                None => {
                    current = Some(Burst {
                        start: i,
                        duration: 1,
                        volume: v,
                    })
                }
            }
        } else if let Some(b) = current.take() {
            out.push(b);
        }
    }
    if let Some(b) = current {
        out.push(b);
    }
    out
}

/// Per-window burst-analysis accuracies, each in `[0, 1]` (1 = perfect).
#[derive(Clone, Copy, Debug, Default)]
pub struct BurstAccuracy {
    /// Agreement on the number of bursts.
    pub count: f64,
    /// Agreement on total burst duration.
    pub duration: f64,
    /// Agreement on total burst volume.
    pub volume: f64,
    /// Agreement on burst start positions.
    pub position: f64,
}

impl BurstAccuracy {
    /// Averages a set of per-window accuracies.
    pub fn mean(items: &[BurstAccuracy]) -> BurstAccuracy {
        if items.is_empty() {
            return BurstAccuracy::default();
        }
        let n = items.len() as f64;
        BurstAccuracy {
            count: items.iter().map(|a| a.count).sum::<f64>() / n,
            duration: items.iter().map(|a| a.duration).sum::<f64>() / n,
            volume: items.iter().map(|a| a.volume).sum::<f64>() / n,
            position: items.iter().map(|a| a.position).sum::<f64>() / n,
        }
    }
}

fn ratio_accuracy(a: f64, b: f64) -> f64 {
    if a == 0.0 && b == 0.0 {
        return 1.0;
    }
    1.0 - (a - b).abs() / a.max(b)
}

/// Compares the bursts of an imputed window against the ground truth.
pub fn burst_accuracy(pred: &[i64], truth: &[i64], threshold: i64) -> BurstAccuracy {
    let bp = detect_bursts(pred, threshold);
    let bt = detect_bursts(truth, threshold);

    let count = ratio_accuracy(bp.len() as f64, bt.len() as f64);
    let duration = ratio_accuracy(
        bp.iter().map(|b| b.duration).sum::<usize>() as f64,
        bt.iter().map(|b| b.duration).sum::<usize>() as f64,
    );
    let volume = ratio_accuracy(
        bp.iter().map(|b| b.volume).sum::<i64>() as f64,
        bt.iter().map(|b| b.volume).sum::<i64>() as f64,
    );

    // Position: mean over true bursts of the distance to the closest
    // predicted burst start, normalized by window length.
    let position = match (bp.is_empty(), bt.is_empty()) {
        (true, true) => 1.0,
        (true, false) | (false, true) => 0.0,
        (false, false) => {
            let len = truth.len().max(1) as f64;
            let mean_dist: f64 = bt
                .iter()
                .map(|t| {
                    bp.iter()
                        .map(|p| (p.start as f64 - t.start as f64).abs())
                        .fold(f64::INFINITY, f64::min)
                })
                .sum::<f64>()
                / bt.len() as f64;
            (1.0 - mean_dist / len).max(0.0)
        }
    };

    BurstAccuracy {
        count,
        duration,
        volume,
        position,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_single_burst() {
        let s = [5, 40, 45, 50, 10];
        let b = detect_bursts(&s, 30);
        assert_eq!(b.len(), 1);
        assert_eq!(
            b[0],
            Burst {
                start: 1,
                duration: 3,
                volume: 135
            }
        );
    }

    #[test]
    fn detects_multiple_and_edge_bursts() {
        let s = [40, 5, 50, 50, 5, 60];
        let b = detect_bursts(&s, 30);
        assert_eq!(b.len(), 3);
        assert_eq!(b[0].start, 0);
        assert_eq!(
            b[1],
            Burst {
                start: 2,
                duration: 2,
                volume: 100
            }
        );
        assert_eq!(b[2].start, 5);
    }

    #[test]
    fn no_bursts_below_threshold() {
        assert!(detect_bursts(&[1, 2, 3], 30).is_empty());
        assert!(detect_bursts(&[30, 30], 30).is_empty(), "strictly above");
        assert!(detect_bursts(&[], 30).is_empty());
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let s = [5, 40, 45, 50, 10];
        let a = burst_accuracy(&s, &s, 30);
        assert_eq!(a.count, 1.0);
        assert_eq!(a.duration, 1.0);
        assert_eq!(a.volume, 1.0);
        assert_eq!(a.position, 1.0);
    }

    #[test]
    fn both_empty_scores_one() {
        let a = burst_accuracy(&[1, 2, 3], &[3, 2, 1], 30);
        assert_eq!(a.count, 1.0);
        assert_eq!(a.position, 1.0);
    }

    #[test]
    fn missing_burst_scores_zero_position() {
        let truth = [5, 40, 45, 50, 10];
        let pred = [5, 5, 5, 5, 5];
        let a = burst_accuracy(&pred, &truth, 30);
        assert_eq!(a.count, 0.0);
        assert_eq!(a.position, 0.0);
        assert_eq!(a.volume, 0.0);
    }

    #[test]
    fn shifted_burst_degrades_position_only_partially() {
        let truth = [50, 5, 5, 5, 5];
        let pred = [5, 5, 50, 5, 5];
        let a = burst_accuracy(&pred, &truth, 30);
        assert_eq!(a.count, 1.0);
        assert_eq!(a.duration, 1.0);
        assert_eq!(a.volume, 1.0);
        assert!((a.position - (1.0 - 2.0 / 5.0)).abs() < 1e-12);
    }

    #[test]
    fn mean_aggregation() {
        let items = vec![
            BurstAccuracy {
                count: 1.0,
                duration: 1.0,
                volume: 1.0,
                position: 1.0,
            },
            BurstAccuracy {
                count: 0.0,
                duration: 0.5,
                volume: 0.2,
                position: 0.0,
            },
        ];
        let m = BurstAccuracy::mean(&items);
        assert!((m.count - 0.5).abs() < 1e-12);
        assert!((m.duration - 0.75).abs() < 1e-12);
        assert!((m.volume - 0.6).abs() < 1e-12);
        assert!((m.position - 0.5).abs() < 1e-12);
    }
}
