//! Rule-violation accounting over model outputs (Fig. 3 left, Fig. 5's
//! compliance column).

use std::collections::HashMap;

use lejit_rules::RuleSet;
use lejit_telemetry::CoarseSignals;

/// Aggregate violation statistics for a batch of outputs.
#[derive(Clone, Debug, Default)]
pub struct ViolationStats {
    /// Number of outputs checked.
    pub outputs: usize,
    /// Outputs violating at least one rule.
    pub violating_outputs: usize,
    /// Total (output, rule) violation pairs.
    pub total_violations: usize,
    /// Violation counts per rule name.
    pub per_rule: HashMap<String, usize>,
}

impl ViolationStats {
    /// Fraction of outputs violating at least one rule (the paper's
    /// "rule violation rate").
    pub fn rate(&self) -> f64 {
        if self.outputs == 0 {
            0.0
        } else {
            self.violating_outputs as f64 / self.outputs as f64
        }
    }

    /// The most frequently violated rules, descending.
    pub fn top_rules(&self, n: usize) -> Vec<(String, usize)> {
        let mut v: Vec<(String, usize)> =
            self.per_rule.iter().map(|(k, &c)| (k.clone(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }
}

/// Checks every output against the rule set.
pub fn violation_stats(rules: &RuleSet, outputs: &[(CoarseSignals, Vec<i64>)]) -> ViolationStats {
    let mut stats = ViolationStats {
        outputs: outputs.len(),
        ..ViolationStats::default()
    };
    for (coarse, fine) in outputs {
        let violated = rules.violations(coarse, fine);
        if !violated.is_empty() {
            stats.violating_outputs += 1;
            stats.total_violations += violated.len();
            for name in violated {
                *stats.per_rule.entry(name.to_string()).or_insert(0) += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use lejit_rules::parse_rules;
    use lejit_telemetry::CoarseField;

    fn coarse(total: i64, ecn: i64) -> CoarseSignals {
        let mut c = CoarseSignals::default();
        c.set(CoarseField::TotalIngress, total);
        c.set(CoarseField::EcnBytes, ecn);
        c
    }

    #[test]
    fn counts_violations_per_rule() {
        let rules = parse_rules(
            "rule r1: forall t: fine[t] <= 60;
             rule r2: sum(fine) == total_ingress;",
        )
        .unwrap();
        let outputs = vec![
            (coarse(100, 0), vec![20, 15, 25, 30, 10]), // compliant
            (coarse(100, 0), vec![20, 15, 25, 70, 8]),  // violates both
            (coarse(100, 0), vec![20, 15, 25, 30, 11]), // violates r2
        ];
        let s = violation_stats(&rules, &outputs);
        assert_eq!(s.outputs, 3);
        assert_eq!(s.violating_outputs, 2);
        assert_eq!(s.total_violations, 3);
        assert!((s.rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.per_rule["r2"], 2);
        assert_eq!(s.per_rule["r1"], 1);
        assert_eq!(s.top_rules(1), vec![("r2".to_string(), 2)]);
    }

    #[test]
    fn empty_outputs() {
        let rules = parse_rules("rule r: drops >= 0;").unwrap();
        let s = violation_stats(&rules, &[]);
        assert_eq!(s.rate(), 0.0);
    }

    #[test]
    fn all_compliant() {
        let rules = parse_rules("rule r: sum(fine) == total_ingress;").unwrap();
        let outputs = vec![(coarse(10, 0), vec![4, 6]), (coarse(0, 0), vec![0, 0])];
        let s = violation_stats(&rules, &outputs);
        assert_eq!(s.violating_outputs, 0);
        assert_eq!(s.rate(), 0.0);
        assert!(s.per_rule.is_empty());
    }
}
