//! Time-series metrics: percentiles and autocorrelation similarity.

/// Linear-interpolated percentile (`q` in `[0, 100]`) of a sample.
///
/// # Panics
/// Panics on an empty sample or `q` outside `[0, 100]`.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&q), "percentile out of range");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Relative error of the predicted distribution's 99th percentile against
/// the true distribution's (denominator floored at 1 to avoid blow-ups on
/// near-zero tails).
pub fn p99_relative_error(pred: &[f64], truth: &[f64]) -> f64 {
    let p = percentile(pred, 99.0);
    let t = percentile(truth, 99.0);
    (p - t).abs() / t.abs().max(1.0)
}

/// Sample autocorrelation of `xs` at `lag` (0 when the series is constant
/// or shorter than `lag + 2`).
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    if xs.len() < lag + 2 {
        return 0.0;
    }
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var: f64 = xs.iter().map(|v| (v - mean) * (v - mean)).sum();
    if var <= 1e-12 {
        return 0.0;
    }
    let cov: f64 = (0..n - lag)
        .map(|i| (xs[i] - mean) * (xs[i + lag] - mean))
        .sum();
    cov / var
}

/// Mean absolute difference between the autocorrelation functions of two
/// series over lags `1..=max_lag` — the paper's "autocorrelation" accuracy
/// axis (lower = imputed series better preserves temporal structure).
pub fn mean_acf_distance(truth: &[f64], pred: &[f64], max_lag: usize) -> f64 {
    assert!(max_lag >= 1, "need at least one lag");
    let mut acc = 0.0;
    for lag in 1..=max_lag {
        acc += (autocorrelation(truth, lag) - autocorrelation(pred, lag)).abs();
    }
    acc / max_lag as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basics() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 100.0).abs() < 1e-12);
        assert!((percentile(&xs, 50.0) - 50.5).abs() < 1e-9);
        assert!((percentile(&[7.0], 73.0) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn p99_error_zero_on_identical() {
        let xs: Vec<f64> = (0..200).map(|i| (i % 37) as f64).collect();
        assert!(p99_relative_error(&xs, &xs) < 1e-12);
    }

    #[test]
    fn p99_error_detects_tail_miss() {
        let truth: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let flat = vec![50.0; 100];
        assert!(p99_relative_error(&flat, &truth) > 0.4);
    }

    #[test]
    fn acf_of_alternating_series() {
        let xs: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&xs, 1) < -0.9);
        assert!(autocorrelation(&xs, 2) > 0.9);
    }

    #[test]
    fn acf_constant_series_is_zero() {
        let xs = vec![5.0; 50];
        assert_eq!(autocorrelation(&xs, 1), 0.0);
    }

    #[test]
    fn acf_short_series_is_zero() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 3), 0.0);
    }

    #[test]
    fn acf_distance_zero_for_same_structure() {
        let xs: Vec<f64> = (0..200).map(|i| (i as f64 * 0.3).sin()).collect();
        assert!(mean_acf_distance(&xs, &xs, 5) < 1e-12);
        // A shuffled copy loses the temporal structure.
        let mut shuffled = xs.clone();
        // Deterministic pseudo-shuffle.
        for i in 0..shuffled.len() {
            let j = (i * 7919) % shuffled.len();
            shuffled.swap(i, j);
        }
        assert!(mean_acf_distance(&xs, &shuffled, 5) > 0.1);
    }
}
