//! # lejit-metrics
//!
//! Evaluation metrics for the LeJIT reproduction, covering everything the
//! paper's figures report:
//!
//! * [`distance`] — Earth Mover's Distance (exact 1-D Wasserstein-1),
//!   Jensen–Shannon divergence over histograms, MAE/RMSE — Fig. 4 (left)
//!   and Fig. 5,
//! * [`timeseries`] — percentiles (p99 error) and autocorrelation
//!   similarity — Fig. 4 (left),
//! * [`burst`] — burst detection and the downstream burst-analysis
//!   accuracies (count / duration / volume / position) — Fig. 4 (right),
//! * [`violations`] — rule-violation accounting over model outputs —
//!   Fig. 3 (left) and Fig. 5's compliance column.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod burst;
pub mod distance;
pub mod timeseries;
pub mod violations;

pub use burst::{burst_accuracy, detect_bursts, Burst, BurstAccuracy};
pub use distance::{emd, jsd, mae, rmse};
pub use timeseries::{autocorrelation, mean_acf_distance, p99_relative_error, percentile};
pub use violations::{violation_stats, ViolationStats};
