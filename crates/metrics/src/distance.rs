//! Distribution distances: exact 1-D Wasserstein (EMD), Jensen–Shannon
//! divergence, and elementwise errors.

/// Exact 1-D Wasserstein-1 distance (Earth Mover's Distance) between two
/// empirical samples, computed as `∫ |F(x) − G(x)| dx` over the merged
/// support. Handles unequal sample sizes.
///
/// # Panics
/// Panics if either sample is empty.
pub fn emd(xs: &[f64], ys: &[f64]) -> f64 {
    assert!(!xs.is_empty() && !ys.is_empty(), "emd of empty sample");
    let mut a: Vec<f64> = xs.to_vec();
    let mut b: Vec<f64> = ys.to_vec();
    a.sort_by(|p, q| p.partial_cmp(q).unwrap());
    b.sort_by(|p, q| p.partial_cmp(q).unwrap());

    let na = a.len() as f64;
    let nb = b.len() as f64;
    let (mut i, mut j) = (0usize, 0usize);
    let mut cdf_a = 0.0f64;
    let mut cdf_b = 0.0f64;
    let mut prev = a[0].min(b[0]);
    let mut total = 0.0f64;
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => x.min(y),
            (Some(&x), None) => x,
            (None, Some(&y)) => y,
            (None, None) => break,
        };
        total += (cdf_a - cdf_b).abs() * (next - prev);
        while i < a.len() && a[i] <= next {
            cdf_a += 1.0 / na;
            i += 1;
        }
        while j < b.len() && b[j] <= next {
            cdf_b += 1.0 / nb;
            j += 1;
        }
        prev = next;
    }
    total
}

/// Jensen–Shannon divergence (base-2 logarithm, result in `[0, 1]`) between
/// histograms of two samples over a shared `bins`-bucket range.
///
/// # Panics
/// Panics if either sample is empty or `bins == 0`.
pub fn jsd(xs: &[f64], ys: &[f64], bins: usize) -> f64 {
    assert!(!xs.is_empty() && !ys.is_empty(), "jsd of empty sample");
    assert!(bins > 0, "jsd needs at least one bin");
    let lo = xs.iter().chain(ys).copied().fold(f64::INFINITY, f64::min);
    let hi = xs
        .iter()
        .chain(ys)
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    if hi <= lo {
        return 0.0; // all mass at a single point in both samples
    }
    let hist = |data: &[f64]| -> Vec<f64> {
        let mut h = vec![0.0f64; bins];
        for &v in data {
            let mut k = ((v - lo) / (hi - lo) * bins as f64) as usize;
            if k >= bins {
                k = bins - 1;
            }
            h[k] += 1.0;
        }
        let n = data.len() as f64;
        for c in &mut h {
            *c /= n;
        }
        h
    };
    let p = hist(xs);
    let q = hist(ys);
    let mut div = 0.0f64;
    for k in 0..bins {
        let m = 0.5 * (p[k] + q[k]);
        if p[k] > 0.0 {
            div += 0.5 * p[k] * (p[k] / m).log2();
        }
        if q[k] > 0.0 {
            div += 0.5 * q[k] * (q[k] / m).log2();
        }
    }
    div
}

/// Mean absolute error between paired values.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "mae length mismatch");
    assert!(!pred.is_empty(), "mae of empty input");
    pred.iter()
        .zip(truth)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Root-mean-square error between paired values.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "rmse length mismatch");
    assert!(!pred.is_empty(), "rmse of empty input");
    (pred
        .iter()
        .zip(truth)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        / pred.len() as f64)
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emd_identical_is_zero() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        assert!(emd(&xs, &xs) < 1e-12);
    }

    #[test]
    fn emd_shifted_uniform() {
        // Shifting a distribution by c moves every unit of mass by c.
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..100).map(|i| i as f64 + 5.0).collect();
        assert!((emd(&xs, &ys) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn emd_point_masses() {
        assert!((emd(&[0.0], &[3.0]) - 3.0).abs() < 1e-12);
        assert!((emd(&[0.0, 0.0], &[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn emd_unequal_sizes() {
        // {0,1} vs {0.5}: move 0.5 mass up 0.5 and 0.5 mass down 0.5 = 0.5.
        assert!((emd(&[0.0, 1.0], &[0.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn emd_symmetry() {
        let xs = vec![1.0, 5.0, 9.0, 2.0];
        let ys = vec![2.0, 2.0, 8.0];
        assert!((emd(&xs, &ys) - emd(&ys, &xs)).abs() < 1e-12);
    }

    #[test]
    fn jsd_identical_is_zero() {
        let xs = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(jsd(&xs, &xs, 8) < 1e-12);
    }

    #[test]
    fn jsd_disjoint_is_one() {
        let xs = vec![0.0, 0.1, 0.2];
        let ys = vec![10.0, 10.1, 10.2];
        let d = jsd(&xs, &ys, 4);
        assert!((d - 1.0).abs() < 1e-9, "jsd {d}");
    }

    #[test]
    fn jsd_bounded_and_symmetric() {
        let xs = vec![1.0, 2.0, 2.0, 3.0, 7.0];
        let ys = vec![2.0, 3.0, 3.0, 8.0];
        let d1 = jsd(&xs, &ys, 6);
        let d2 = jsd(&ys, &xs, 6);
        assert!((d1 - d2).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&d1));
    }

    #[test]
    fn jsd_degenerate_single_point() {
        assert_eq!(jsd(&[5.0, 5.0], &[5.0], 8), 0.0);
    }

    #[test]
    fn mae_rmse_basics() {
        let pred = vec![1.0, 2.0, 3.0];
        let truth = vec![2.0, 2.0, 1.0];
        assert!((mae(&pred, &truth) - 1.0).abs() < 1e-12);
        assert!((rmse(&pred, &truth) - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mae(&pred, &pred), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(-50i32..=50, 1..40)
            .prop_map(|v| v.into_iter().map(|x| x as f64).collect())
    }

    proptest! {
        #[test]
        fn emd_is_a_metric_ish(xs in sample(), ys in sample(), zs in sample()) {
            let dxy = emd(&xs, &ys);
            let dyx = emd(&ys, &xs);
            prop_assert!((dxy - dyx).abs() < 1e-9, "symmetry");
            prop_assert!(dxy >= 0.0, "non-negativity");
            prop_assert!(emd(&xs, &xs) < 1e-9, "identity");
            // Triangle inequality (holds exactly for W1).
            let dxz = emd(&xs, &zs);
            let dzy = emd(&zs, &ys);
            prop_assert!(dxy <= dxz + dzy + 1e-6, "triangle: {dxy} > {dxz} + {dzy}");
        }

        #[test]
        fn emd_shift_equivariance(xs in sample(), shift in -20i32..=20) {
            let shifted: Vec<f64> = xs.iter().map(|v| v + shift as f64).collect();
            let d = emd(&xs, &shifted);
            prop_assert!((d - (shift as f64).abs()).abs() < 1e-6,
                "shifting by c moves every unit of mass by |c|: got {d}");
        }

        #[test]
        fn jsd_bounds_and_symmetry(xs in sample(), ys in sample()) {
            let d = jsd(&xs, &ys, 12);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&d));
            prop_assert!((d - jsd(&ys, &xs, 12)).abs() < 1e-9);
            prop_assert!(jsd(&xs, &xs, 12) < 1e-9);
        }

        #[test]
        fn mae_rmse_relationship(xs in sample()) {
            // RMSE >= MAE always (Jensen), with equality iff all errors equal.
            let zeros = vec![0.0; xs.len()];
            let m = mae(&xs, &zeros);
            let r = rmse(&xs, &zeros);
            prop_assert!(r + 1e-9 >= m, "rmse {r} < mae {m}");
        }
    }
}
