//! Synthetic network data generation (§4.2): the *same* model, repurposed.
//!
//! Trains one model on telemetry text, then swaps in the synthesis rule set
//! (no retraining) to generate coarse-signal records, comparing fidelity
//! (JSD vs the training marginals) and compliance against a simulated SOTA
//! generator.
//!
//! Run with: `cargo run --release --example synthesis`

use lejit::baselines::{CoarseGenerator, EWganGpLike};
use lejit::core::{Synthesizer, TaskConfig};
use lejit::lm::{NgramLm, Vocab};
use lejit::metrics::{jsd, violation_stats};
use lejit::rules::{mine_rules, MinerConfig};
use lejit::telemetry::{
    encode_imputation_example, generate, vocab_corpus_sample, CoarseField, CoarseSignals,
    TelemetryConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let data = generate(TelemetryConfig {
        racks_train: 15,
        racks_test: 3,
        windows_per_rack: 50,
        ..TelemetryConfig::default()
    });

    // One model, trained once — on the same text as the imputation task.
    let texts: Vec<String> = data.train.iter().map(encode_imputation_example).collect();
    let vocab = Vocab::from_corpus(&(texts.join("\n") + &vocab_corpus_sample()));
    let seqs: Vec<_> = texts.iter().map(|t| vocab.encode(t).unwrap()).collect();
    let model = NgramLm::train(vocab, &seqs, 6);

    // Swap in the *synthesis* rule set (mined over coarse signals only).
    let mined = mine_rules(&data.train, data.bandwidth, MinerConfig::default());
    println!("mined {} synthesis rules", mined.synthesis.len());
    let mut hi = [1i64; 6];
    for f in CoarseField::ALL {
        hi[f.index()] = data.train_max(f).max(1);
    }
    let synth = Synthesizer::new(&model, mined.synthesis.clone(), hi, TaskConfig::default());

    // Draw samples from LeJIT, vanilla, and a simulated SOTA generator.
    let n = 200;
    let mut rng = StdRng::seed_from_u64(9);
    let lejit: Vec<CoarseSignals> = (0..n)
        .filter_map(|_| synth.synthesize(&mut rng).ok().map(|(s, _)| s))
        .collect();
    let vanilla: Vec<CoarseSignals> = (0..n)
        .filter_map(|_| synth.synthesize_vanilla(&mut rng).ok().map(|(s, _)| s))
        .collect();
    let kde = EWganGpLike::fit(&data.train);
    let kde_samples: Vec<CoarseSignals> = (0..n).map(|_| kde.generate(&mut rng)).collect();

    println!(
        "\n{:<18} {:>10} {:>16}",
        "method", "mean JSD", "violation rate"
    );
    for (name, samples) in [
        ("LeJIT", &lejit),
        ("vanilla LM", &vanilla),
        ("E-WGAN-GP-like", &kde_samples),
    ] {
        let mut total = 0.0;
        for f in CoarseField::ALL {
            let train: Vec<f64> = data.train.iter().map(|w| w.coarse.get(f) as f64).collect();
            let gen: Vec<f64> = samples.iter().map(|s| s.get(f) as f64).collect();
            total += jsd(&gen, &train, 16);
        }
        let outputs: Vec<(CoarseSignals, Vec<i64>)> =
            samples.iter().map(|&s| (s, Vec::new())).collect();
        let stats = violation_stats(&mined.synthesis, &outputs);
        println!(
            "{name:<18} {:>10.3} {:>15.1}%",
            total / 6.0,
            stats.rate() * 100.0
        );
    }
    println!("\nLeJIT keeps fidelity close to the unconstrained model while driving");
    println!("violations to zero — no retraining, just a different rule set.");
}
