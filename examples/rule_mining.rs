//! NetNomos-style rule mining: discover domain rules from training data.
//!
//! Mines both task rule sets from synthetic telemetry, prints a sample of
//! each rule family, verifies confidence 1.0 on the training split, and
//! round-trips the sets through the rule DSL and JSON.
//!
//! Run with: `cargo run --release --example rule_mining`

use lejit::rules::{mine_rules, parse_rules, MinerConfig, RuleSet};
use lejit::telemetry::{generate, TelemetryConfig};

fn main() {
    let data = generate(TelemetryConfig {
        racks_train: 20,
        racks_test: 5,
        windows_per_rack: 50,
        ..TelemetryConfig::default()
    });
    let mined = mine_rules(&data.train, data.bandwidth, MinerConfig::default());
    println!(
        "mined {} imputation rules and {} synthesis rules from {} windows",
        mined.imputation.len(),
        mined.synthesis.len(),
        data.train.len()
    );

    // A sample from each family.
    println!("\n-- sample imputation rules --");
    for prefix in ["fine_bounds", "sum_consistency", "coarse_", "fimp_"] {
        if let Some(r) = mined
            .imputation
            .rules
            .iter()
            .find(|r| r.name.starts_with(prefix))
        {
            println!("  {r}");
        }
    }
    println!("\n-- sample synthesis rules --");
    for prefix in ["bound_", "order_", "zero_", "imp_"] {
        if let Some(r) = mined
            .synthesis
            .rules
            .iter()
            .find(|r| r.name.starts_with(prefix))
        {
            println!("  {r}");
        }
    }

    // Confidence 1.0 on training data, generalization on test data.
    let check = |rs: &RuleSet, label: &str| {
        let train_bad = data
            .train
            .iter()
            .filter(|w| !rs.compliant(&w.coarse, &w.fine))
            .count();
        let test_bad = data
            .test
            .iter()
            .filter(|w| !rs.compliant(&w.coarse, &w.fine))
            .count();
        println!(
            "{label}: {train_bad}/{} train violations (must be 0), {test_bad}/{} on held-out racks",
            data.train.len(),
            data.test.len()
        );
        assert_eq!(train_bad, 0);
    };
    println!();
    check(&mined.imputation, "imputation set");
    check(&mined.synthesis, "synthesis set");

    // DSL round-trip: every mined rule re-parses to the same AST.
    let text = mined.synthesis.to_string();
    let reparsed = parse_rules(&text).expect("mined rules are valid DSL");
    assert_eq!(reparsed.rules, mined.synthesis.rules);
    println!("\nDSL round-trip OK ({} bytes of rule text)", text.len());

    // JSON round-trip (the on-disk rule-set format).
    let json = mined.imputation.to_json();
    let back = RuleSet::from_json(&json).unwrap();
    assert_eq!(back.rules, mined.imputation.rules);
    println!("JSON round-trip OK ({} bytes)", json.len());
}
