//! Telemetry imputation with a char-level GPT trained from scratch (§4.1).
//!
//! Trains the tiny GPT on telemetry text, then compares four decoding
//! strategies on held-out windows: vanilla, rejection sampling, post-hoc
//! repair, and LeJIT — reporting violation rates and accuracy.
//!
//! Run with: `cargo run --release --example imputation`

use lejit::core::{Imputer, TaskConfig};
use lejit::lm::optim::AdamConfig;
use lejit::lm::{GptConfig, TinyGpt, Vocab};
use lejit::metrics::{mae, violation_stats};
use lejit::rules::{mine_rules, MinerConfig};
use lejit::telemetry::{
    encode_imputation_example, generate, vocab_corpus_sample, CoarseSignals, TelemetryConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Dataset + text corpus.
    let data = generate(TelemetryConfig {
        racks_train: 12,
        racks_test: 3,
        windows_per_rack: 40,
        ..TelemetryConfig::default()
    });
    let texts: Vec<String> = data.train.iter().map(encode_imputation_example).collect();
    let vocab = Vocab::from_corpus(&(texts.join("\n") + &vocab_corpus_sample()));
    let seqs: Vec<_> = texts.iter().map(|t| vocab.encode(t).unwrap()).collect();

    // Train the GPT from scratch (a few hundred steps suffice at this scale).
    println!("training char-level GPT from scratch...");
    let mut gpt = TinyGpt::new(
        GptConfig {
            d_model: 48,
            n_layers: 2,
            n_heads: 2,
            max_seq_len: 96,
        },
        vocab,
        1,
    );
    let mut rng = StdRng::seed_from_u64(2);
    let losses = gpt.train(
        &seqs,
        150,
        4,
        AdamConfig {
            lr: 3e-3,
            warmup_steps: 20,
            total_steps: 150,
            ..AdamConfig::default()
        },
        &mut rng,
    );
    println!(
        "trained {} params; loss {:.3} -> {:.3}",
        gpt.num_params(),
        losses.first().unwrap(),
        losses.last().unwrap()
    );

    // Mine rules from the training split (NetNomos-style).
    let mined = mine_rules(&data.train, data.bandwidth, MinerConfig::default());
    println!("mined {} imputation rules", mined.imputation.len());

    let imputer = Imputer::new(
        &gpt,
        mined.imputation.clone(),
        data.window_len,
        data.bandwidth,
        TaskConfig {
            rejection_budget: 200,
            ..TaskConfig::default()
        },
    );

    // Evaluate three strategies over a slice of test windows.
    let windows = &data.test[..20.min(data.test.len())];
    let mut rng = StdRng::seed_from_u64(3);

    let report = |name: &str, outputs: Vec<Option<Vec<i64>>>| {
        let judged: Vec<(CoarseSignals, Vec<i64>)> = windows
            .iter()
            .zip(&outputs)
            .filter_map(|(w, o)| o.clone().map(|v| (w.coarse, v)))
            .collect();
        let stats = violation_stats(&mined.imputation, &judged);
        let (pred, truth): (Vec<f64>, Vec<f64>) = windows
            .iter()
            .zip(&outputs)
            .filter_map(|(w, o)| o.as_ref().map(|v| (v, &w.fine)))
            .flat_map(|(v, f)| v.iter().zip(f).map(|(&p, &t)| (p as f64, t as f64)))
            .unzip();
        let acc = if pred.is_empty() {
            f64::NAN
        } else {
            mae(&pred, &truth)
        };
        println!(
            "{name:<22} violation rate {:>6.1}%   MAE {acc:.2}   ({}/{} produced)",
            stats.rate() * 100.0,
            judged.len(),
            windows.len()
        );
    };

    println!("\n-- strategies on {} held-out windows --", windows.len());
    report(
        "vanilla GPT",
        windows
            .iter()
            .map(|w| {
                imputer
                    .impute_vanilla(&w.coarse, &mut rng)
                    .ok()
                    .map(|o| o.values)
            })
            .collect(),
    );
    report(
        "post-hoc repair",
        windows
            .iter()
            .map(|w| {
                imputer
                    .impute_repaired(&w.coarse, &mut rng)
                    .ok()
                    .map(|(v, _)| v)
            })
            .collect(),
    );
    report(
        "LeJIT",
        windows
            .iter()
            .map(|w| imputer.impute(&w.coarse, &mut rng).ok().map(|o| o.values))
            .collect(),
    );
    println!("\nLeJIT outputs are compliant by construction; repair is compliant");
    println!("but distorts the distribution; vanilla violates freely.");
}
