//! Quickstart: enforce the paper's rules R1–R3 during generation.
//!
//! Trains a small n-gram model on synthetic telemetry text, then imputes a
//! test window twice — once unconstrained (vanilla) and once with LeJIT —
//! and shows that only the LeJIT output satisfies the rules.
//!
//! Run with: `cargo run --release --example quickstart`

use lejit::core::{Imputer, TaskConfig};
use lejit::lm::{NgramLm, Vocab};
use lejit::rules::parse_rules;
use lejit::telemetry::{encode_imputation_example, generate, CoarseField, TelemetryConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Synthetic datacenter telemetry (substitute for the Meta dataset).
    let data = generate(TelemetryConfig {
        racks_train: 10,
        racks_test: 2,
        windows_per_rack: 40,
        ..TelemetryConfig::default()
    });
    println!(
        "dataset: {} train windows, {} test windows, BW = {}",
        data.train.len(),
        data.test.len(),
        data.bandwidth
    );

    // 2. A character-level autoregressive model trained on the text
    //    encoding of the training windows.
    let texts: Vec<String> = data.train.iter().map(encode_imputation_example).collect();
    let vocab = Vocab::from_corpus(&(texts.join("\n") + "0123456789,;|=.TERGCD"));
    let seqs: Vec<_> = texts.iter().map(|t| vocab.encode(t).unwrap()).collect();
    let model = NgramLm::train(vocab, &seqs, 5);

    // 3. The paper's rules, in the rule DSL (Section 2.1, R1–R3).
    let rules = parse_rules(
        "rule r1: forall t: fine[t] >= 0 and fine[t] <= 60;
         rule r2: sum(fine) == total_ingress;
         rule r3: ecn_bytes > 0 => max(fine) >= 30;",
    )
    .unwrap();
    println!("\nrules:\n{rules}");

    // 4. Impute a held-out window with and without JIT enforcement.
    let imputer = Imputer::new(
        &model,
        rules,
        data.window_len,
        data.bandwidth,
        TaskConfig::default(),
    );
    let mut rng = StdRng::seed_from_u64(42);
    let window = data
        .test
        .iter()
        .find(|w| w.coarse.get(CoarseField::EcnBytes) > 0)
        .expect("some congested window exists");

    println!(
        "window under imputation: total_ingress = {}, ecn_bytes = {}",
        window.coarse.get(CoarseField::TotalIngress),
        window.coarse.get(CoarseField::EcnBytes)
    );
    println!("ground truth fine series: {:?}", window.fine);

    let vanilla = imputer.impute_vanilla(&window.coarse, &mut rng).unwrap();
    let violated = imputer.rules().violations(&window.coarse, &vanilla.values);
    println!(
        "\nvanilla output:  {:?}  (sum {})  violates: {violated:?}",
        vanilla.values,
        vanilla.values.iter().sum::<i64>()
    );

    let jit = imputer.impute(&window.coarse, &mut rng).unwrap();
    println!(
        "LeJIT output:    {:?}  (sum {})  violates: {:?}",
        jit.values,
        jit.values.iter().sum::<i64>(),
        imputer.rules().violations(&window.coarse, &jit.values)
    );
    println!(
        "LeJIT stats: {} solver checks, {} interventions, {} forced choices",
        jit.stats.solver_checks, jit.stats.interventions, jit.stats.forced_choices
    );
    assert!(imputer.rules().compliant(&window.coarse, &jit.values));
    println!("\nLeJIT output is rule-compliant by construction.");

    // Bonus: a traced decode, showing per-character what the transition
    // system allowed and where LeJIT actually intervened.
    use lejit::core::JitDecoder;
    use lejit::lm::SamplerConfig;
    use lejit::telemetry::{encode_prompt, PROMPT_SEPARATOR};
    let (mut session, schema) = imputer.build_session(&window.coarse);
    let mut prompt = encode_prompt(&window.coarse);
    prompt.push(PROMPT_SEPARATOR);
    let decoder = JitDecoder::new(&model, SamplerConfig::default());
    let (traced_out, trace) = decoder
        .decode_traced(&mut session, &schema, &prompt, &mut rng)
        .unwrap();
    println!(
        "\n-- decode trace ({} steps, {} interventions, {} forced) --",
        trace.steps.len(),
        trace.interventions(),
        trace.forced_steps()
    );
    print!("{trace}");
    println!("traced output: {:?}", traced_out.values);
}
