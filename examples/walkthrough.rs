//! Walkthrough of the paper's Fig. 1b and Fig. 2, step by step.
//!
//! Reconstructs the running example: imputing `[I_0, …, I_4]` with
//! TotalIngress = 100, Congestion (ECN) = 8, BW = 60 under rules R1–R3, and
//! prints the solver's feasible regions plus the character-level transition
//! system at each step.
//!
//! Run with: `cargo run --release --example walkthrough`

use lejit::core::schema::DecodeSchema;
use lejit::core::{allowed_chars, JitSession, Lookahead, VarState};
use lejit::rules::{ground_rule, parse_rules, GroundCtx};
use lejit::telemetry::CoarseField;

fn main() {
    println!("=== LeJIT walkthrough: Fig. 1b / Fig. 2 ===\n");
    println!("Window T = 5, BW = 60, TotalIngress = 100, Congestion = 8");
    println!("R1: forall t: 0 <= I_t <= 60");
    println!("R2: sum I_t == 100");
    println!("R3: Congestion > 0 => max I_t >= 30\n");

    // Build the session: coarse signals as constants, I_0..I_4 as variables.
    let schema = DecodeSchema::fine_series(5, 60);
    let mut session = JitSession::new(&schema);
    let rules = parse_rules(
        "rule r1: forall t: fine[t] >= 0 and fine[t] <= 60;
         rule r2: sum(fine) == total_ingress;
         rule r3: ecn_bytes > 0 => max(fine) >= 30;",
    )
    .unwrap();
    {
        let solver = session.solver_mut();
        let mut coarse_vals = [0i64; 6];
        coarse_vals[CoarseField::TotalIngress.index()] = 100;
        coarse_vals[CoarseField::EcnBytes.index()] = 8;
        let coarse: Vec<_> = CoarseField::ALL
            .into_iter()
            .map(|f| solver.int(coarse_vals[f.index()]))
            .collect();
        let fine: Vec<_> = (0..5)
            .map(|t| {
                let v = solver.pool().find_var(&format!("fine{t}")).unwrap();
                solver.var(v)
            })
            .collect();
        let ctx = GroundCtx {
            coarse: coarse.try_into().unwrap(),
            fine,
        };
        for r in &rules.rules {
            let g = ground_rule(solver.pool_mut(), &ctx, r);
            solver.assert(g);
        }
    }

    // Step 1 (paper ①): the LLM has produced I_0 = 20, I_1 = 15, I_2 = 25.
    println!("① LLM generates I_0 = 20, I_1 = 15, I_2 = 25 (all within their");
    println!("   feasible regions, so LeJIT does not intervene).");
    for (k, v) in [(0usize, 20i64), (1, 15), (2, 25)] {
        session.fix(k, v);
    }

    // Step 2 (paper ②): the solver computes the feasible region for I_3.
    let (lo, hi) = session.feasible_range(3).expect("satisfiable");
    println!("\n② Solver computes the feasible region for I_3: [{lo}, {hi}]");
    println!("   (naively [0, 60], but R2 with I_4 <= 60 caps it at 40 — the");
    println!("   solver *looked ahead* to keep a path to a valid output)");

    // Step 3 (paper ③): the character-level transition system (Fig. 2).
    println!("\n③ Character-level transition system for I_3 (Fig. 2):");
    let spec = schema.variables()[3].clone();
    let mut state = VarState::start();
    let opts = allowed_chars(&mut session, 3, &spec, &state, Lookahead::Full);
    println!(
        "   state \"\"  -> digits {:?}, terminator: {}",
        opts.digits, opts.terminator
    );
    state.push(3);
    let opts = allowed_chars(&mut session, 3, &spec, &state, Lookahead::Full);
    println!(
        "   state \"3\" -> digits {:?}, terminator: {}",
        opts.digits, opts.terminator
    );
    println!("   (after '3' every extension 30..39 lies inside [0, 40], so all");
    println!("    digits survive; contrast state \"4\", where only '0' does:)");
    let mut st4 = lejit::core::VarState::start();
    st4.push(4);
    let opts4 = allowed_chars(&mut session, 3, &spec, &st4, Lookahead::Full);
    println!(
        "   state \"4\" -> digits {:?}, terminator: {}",
        opts4.digits, opts4.terminator
    );
    state.push(9);
    let opts = allowed_chars(&mut session, 3, &spec, &state, Lookahead::Full);
    println!(
        "   state \"39\" -> digits {:?}, terminator: {} (value 39 commits)",
        opts.digits, opts.terminator
    );

    // Step 4 (paper ④): the LLM emits I_3 = 39.
    session.fix(3, 39);
    println!("\n④ LLM (guided) emits I_3 = 39 — guaranteed rule-consistent.");

    // Step 5 (paper ⑤): only a single value remains for I_4.
    let (lo4, hi4) = session.feasible_range(4).expect("satisfiable");
    println!("\n⑤ Feasible region for I_4: [{lo4}, {hi4}] — the aggregation rule R2");
    println!("   leaves a single valid value; the transition system forces it:");
    let spec4 = schema.variables()[4].clone();
    let opts = allowed_chars(&mut session, 4, &spec4, &VarState::start(), Lookahead::Full);
    println!(
        "   state \"\" -> digits {:?}, terminator: {}",
        opts.digits, opts.terminator
    );
    assert_eq!((lo4, hi4), (1, 1));
    println!("\nFinal imputed series: [20, 15, 25, 39, 1] — sum = 100, max = 39 >= 30.");
    println!(
        "All of R1–R3 hold by construction. ({} solver checks issued)",
        session.checks()
    );
}
